/**
 * @file
 * The vlpsim serve daemon: an async experiment service.
 *
 * ExperimentServer accepts newline-delimited JSON connections
 * (serve/protocol.h) on a TCP-loopback or Unix-domain endpoint and
 * runs experiment requests on a fixed worker pool behind a bounded
 * priority RequestQueue:
 *
 *   accept thread ── one thread per connection ──> RequestQueue
 *                                                       │ pop()
 *                                  worker threads <─────┘
 *
 * Per-request lifecycle: a submit frame is parsed, costed, and pushed
 * through admission control — over-capacity submits are rejected with
 * an explicit 429-style frame, never buffered without bound. Admitted
 * requests carry a util::CancelToken threaded into the experiment
 * layer, so `cancel` aborts a queued request instantly and unwinds a
 * running one at its next step boundary. Results stream back to the
 * submitting connection as a versioned vlpsim-report document
 * embedded in a result frame, with progress and heartbeat events
 * while the request runs.
 *
 * Warm answers: with a cache directory configured, every request
 * opens its *own* store::ArtifactStore instance over the shared
 * directory (counters are per-instance; concurrent instances are safe
 * — PR4's atomic publishes), so the result frame's cacheHits /
 * cacheMisses attribute store activity to exactly that request, and
 * `cacheHit` marks a fully warm answer.
 *
 * Shutdown: notifyShutdown() is async-signal-safe (one write to a
 * self-pipe), so the CLI's SIGTERM handler can call it directly. The
 * drain sequence rejects new submits with 503, finishes everything
 * already admitted, then tears the daemon down.
 */

#ifndef VLPSIM_SERVE_SERVER_H
#define VLPSIM_SERVE_SERVER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/request_queue.h"
#include "util/chaos.h"
#include "util/socket.h"

namespace vlp {
namespace serve {

/** Daemon configuration. */
struct ServerOptions
{
    /** Listen address (TCP loopback or Unix socket path). */
    util::net::Endpoint listen;
    /** Concurrent experiment slots (requests running at once). */
    unsigned workers = 2;
    /** Clamp on a request's worker threads (0 = no clamp). */
    unsigned maxJobsPerRequest = 0;
    /** Admission-control limits. */
    QueueLimits limits;
    /** Heartbeat period for running requests (0 disables). */
    unsigned heartbeatMs = 1000;
    /** Per-send timeout on client connections: a peer that stops
     *  reading is dropped after this long (0 = block forever). */
    unsigned sendTimeoutMs = 10'000;
    /** Terminal requests kept for status queries; older ones are
     *  reaped so a long-running daemon stays bounded. */
    std::size_t finishedWindow = 256;
    /** Artifact-store directory (empty = no cache). */
    std::string cacheDirectory;
    /** Store size bound, LRU-evicted (0 = unbounded). */
    std::uint64_t cacheMaxBytes = 0;
    /** Chaos switchboard knobs; when enabled, start() installs this
     *  configuration process-wide (the --chaos* flags). */
    util::chaos::Config chaos;
};

/** Lifetime request counters, for status frames and tests. */
struct ServerStats
{
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;
};

class ExperimentServer
{
  public:
    explicit ExperimentServer(ServerOptions options);

    /** Stops the daemon (as if by stop()) if still running. */
    ~ExperimentServer();

    ExperimentServer(const ExperimentServer &) = delete;
    ExperimentServer &operator=(const ExperimentServer &) = delete;

    /**
     * Bind the listen endpoint and start the accept and worker
     * threads. Returns once the daemon is reachable.
     * @throws std::runtime_error when binding fails
     */
    void start();

    /**
     * Block until shutdown is requested (notifyShutdown(), a client
     * `shutdown` frame, or SIGTERM wired to notifyShutdown()), then
     * drain and stop. The common daemon main loop.
     */
    void run();

    /**
     * Async-signal-safe shutdown trigger: one write to the daemon's
     * self-pipe. Safe to call from a signal handler or any thread;
     * idempotent.
     */
    void notifyShutdown() noexcept;

    /** Stop admitting new requests (503) while finishing admitted
     *  ones. Returns immediately; idempotent. */
    void requestDrain();

    /** Block until no request is queued or running. */
    void awaitIdle();

    /** Tear everything down: wake accept, close connections, join
     *  all threads. Idempotent. */
    void stop();

    /** Bound endpoint (ephemeral TCP port filled in after start()). */
    const util::net::Endpoint &endpoint() const { return local_; }

    ServerStats stats() const;

  private:
    /** One client connection; shared with workers that stream
     *  results back to it. */
    struct Connection
    {
        util::net::Socket socket;
        std::mutex writeMutex;
        /** Cleared on the first failed write; later sends are
         *  dropped (the peer is gone — requests still finish). */
        bool alive = true;

        explicit Connection(util::net::Socket s)
            : socket(std::move(s))
        {}

        /** Send one frame + '\n'; never throws. */
        void sendLine(const std::string &frame) noexcept;

        /** sendLine() body for a caller already holding writeMutex
         *  (the submit path keeps it across admission so the
         *  accepted frame beats any worker frame to the wire). */
        void sendLineLocked(const std::string &frame) noexcept;
    };

    /** One connection-serving thread plus its exit flag, so the
     *  accept loop can reap finished threads as clients come and
     *  go instead of accumulating them until stop(). */
    struct ConnectionThread
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };

    enum class State { Queued, Running, Done, Cancelled, Failed };

    static const char *describeState(State state);

    /** One admitted request's bookkeeping. */
    struct Request
    {
        std::uint64_t id = 0;
        SubmitSpec spec;
        /** Admission cost reserved in the queue. */
        std::size_t cost = 0;
        std::shared_ptr<Connection> connection;
        std::shared_ptr<util::CancelToken> cancel;
        State state = State::Queued; // guarded by registryMutex_
    };

    void acceptLoop();
    void workerLoop();
    void serveConnection(std::shared_ptr<Connection> connection);

    /** Dispatch one parsed client frame. */
    void handleFrame(const std::shared_ptr<Connection> &connection,
                     const std::string &line);
    void handleSubmit(const std::shared_ptr<Connection> &connection,
                      const util::Json &frame, std::size_t frame_bytes);
    void handleStatus(const std::shared_ptr<Connection> &connection,
                      const util::Json &frame);
    void handleCancel(const std::shared_ptr<Connection> &connection,
                      const util::Json &frame);

    /** Run one popped request on a worker thread. */
    void execute(const std::shared_ptr<Request> &request);

    /** Build the request's report (the op dispatch). */
    sim::Report runOperation(const Request &request,
                             const std::shared_ptr<store::ArtifactStore>
                                 &store,
                             std::uint64_t &predictions);

    State setState(const std::shared_ptr<Request> &request,
                   State state);

    /** Record @p request as terminal and evict the oldest terminal
     *  requests beyond options_.finishedWindow, so the registry
     *  stays bounded over the daemon's lifetime. */
    void retireRequest(const std::shared_ptr<Request> &request);

    /** Join and drop connection threads whose client disconnected
     *  (caller holds connectionsMutex_). */
    void reapConnectionThreadsLocked();

    ServerOptions options_;
    util::net::Endpoint local_;
    std::optional<util::net::ListenSocket> listen_;
    RequestQueue queue_;

    /** Self-pipe: [0] read (polled), [1] write (signal-safe). */
    int shutdownPipe_[2] = {-1, -1};

    std::thread acceptThread_;
    std::vector<std::thread> workers_;

    mutable std::mutex registryMutex_;
    std::map<std::uint64_t, std::shared_ptr<Request>> requests_;
    /** Terminal request ids, oldest first (the reaping window). */
    std::deque<std::uint64_t> finishedOrder_;
    std::uint64_t nextId_ = 1;
    ServerStats stats_;

    std::mutex connectionsMutex_;
    std::vector<std::shared_ptr<Connection>> connections_;
    std::vector<ConnectionThread> connectionThreads_;

    std::mutex lifecycleMutex_;
    bool started_ = false;
    bool stopped_ = false;
};

} // namespace serve
} // namespace vlp

#endif // VLPSIM_SERVE_SERVER_H
