/**
 * @file
 * Serve client implementation.
 */

#include "serve/client.h"

#include <algorithm>
#include <stdexcept>

namespace vlp {
namespace serve {

ServeClient::ServeClient(const util::net::Endpoint &endpoint,
                         unsigned recv_timeout_ms)
    : socket_(util::net::Socket::connect(endpoint)), reader_(socket_)
{
    if (recv_timeout_ms != 0)
        socket_.setRecvTimeout(recv_timeout_ms);
    hello_ = readFrame();
    const util::Json *type = hello_.find("type");
    if (type == nullptr || !type->isString()
        || type->asString() != "hello") {
        throw std::runtime_error(
            "serve handshake failed: expected a hello frame");
    }
    const util::Json *version = hello_.find("protocolVersion");
    if (version == nullptr || !version->isNumber()
        || version->asUint() != protocolVersion) {
        throw std::runtime_error(
            "serve protocol mismatch: server speaks v"
            + (version != nullptr && version->isNumber()
                   ? version->numberText()
                   : std::string("?"))
            + ", client speaks v" + std::to_string(protocolVersion));
    }
}

void
ServeClient::sendFrame(const std::string &frame)
{
    socket_.sendAll(frame + "\n");
}

util::Json
ServeClient::readFrame()
{
    std::string line;
    if (!reader_.readLine(line))
        throw std::runtime_error("serve connection closed");
    return util::Json::parse(line);
}

util::Json
ServeClient::awaitFrame(
    const std::vector<std::string> &want, std::uint64_t id,
    const std::function<void(const util::Json &)> &event)
{
    for (;;) {
        util::Json frame = readFrame();
        const util::Json *type = frame.find("type");
        const std::string name =
            type != nullptr && type->isString() ? type->asString()
                                                : std::string();
        const util::Json *frame_id = frame.find("id");
        const std::uint64_t got_id =
            frame_id != nullptr && frame_id->isNumber()
            ? frame_id->asUint()
            : 0;
        const bool id_matches = id == 0 || got_id == id;
        if (id_matches
            && std::find(want.begin(), want.end(), name)
                != want.end()) {
            return frame;
        }
        // An error frame for our request (or a connection-scoped
        // one) terminates the wait even when not asked for.
        if (name == "error" && (got_id == id || got_id == 0))
            return frame;
        if (event)
            event(frame);
    }
}

ServeClient::Submission
ServeClient::submit(const SubmitSpec &spec)
{
    sendFrame(submitFrame(spec));
    const util::Json frame =
        awaitFrame({"accepted", "rejected"}, 0, {});
    Submission submission;
    const std::string &type = frame.at("type").asString();
    if (type == "accepted") {
        submission.accepted = true;
        submission.id = frame.at("id").asUint();
        submission.position = static_cast<std::size_t>(
            frame.at("position").asUint());
        return submission;
    }
    if (type == "rejected") {
        submission.code = static_cast<int>(frame.at("code").asUint());
        submission.reason = frame.at("reason").asString();
        return submission;
    }
    throw std::runtime_error("submit failed: "
                             + frame.at("message").asString());
}

util::Json
ServeClient::await(std::uint64_t id,
                   const std::function<void(const util::Json &)> &event)
{
    return awaitFrame({"result", "cancelled"}, id, event);
}

util::Json
ServeClient::status(std::uint64_t id)
{
    sendFrame(clientStatusFrame(id));
    return awaitFrame({"status-report"}, id, {});
}

util::Json
ServeClient::cancel(std::uint64_t id)
{
    sendFrame(clientCancelFrame(id));
    return awaitFrame({"cancelled", "status-report"}, id, {});
}

void
ServeClient::shutdownServer()
{
    sendFrame(clientShutdownFrame());
    awaitFrame({"shutting-down"}, 0, {});
}

} // namespace serve
} // namespace vlp
