/**
 * @file
 * Regenerates Table 1 (benchmark summary): static and dynamic counts
 * of conditional and indirect branches on the test input of every
 * benchmark, with the paper's numbers alongside for comparison.
 */

#include "bench_common.h"

#include "trace/trace_stats.h"
#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    bench::Driver driver(
        "bench_table1", "Table 1: Benchmark Summary",
        "test inputs; paper dynamic counts scaled by 1/20, "
        "paper static counts by ~1/3 (DESIGN.md §3)");
    return driver.run(argc, argv, [](sim::ParallelRunner &runner,
                                     sim::Report &report) {
        sim::Section &section = report.addSection("benchmarks");
        section.columns = {
            {"Benchmark"},     {"cond dynamic"},
            {"cond static"},   {"ind dynamic"},
            {"ind static"},    {"paper cond dyn"},
            {"paper cond st"}, {"paper ind dyn"},
            {"paper ind st"},
        };

        // Trace generation dominates here; shard it per benchmark
        // and assemble the rows in suite order.
        const auto &suite = workload::benchmarkSuite();
        const auto rows = runner.map<std::vector<sim::Cell>>(
            suite.size(),
            [&](sim::ExperimentContext &, std::size_t i) {
                const auto &spec = suite[i];
                auto trace = workload::generateTrace(
                    spec, workload::InputKind::Test);
                trace::TraceStats stats;
                stats.observeAll(trace);
                runner.addPredictions(trace.size());
                return std::vector<sim::Cell>{
                    sim::Cell::text(spec.name),
                    sim::Cell::scaled(stats.dynamicConditional()),
                    sim::Cell::count(stats.staticConditional()),
                    sim::Cell::scaled(stats.dynamicIndirect()),
                    sim::Cell::count(stats.staticIndirect()),
                    sim::Cell::scaled(spec.paperDynamicCond),
                    sim::Cell::count(spec.paperStaticCond),
                    sim::Cell::scaled(spec.paperDynamicIndirect),
                    sim::Cell::count(spec.paperStaticInd),
                };
            });
        for (std::size_t i = 0; i < suite.size(); ++i)
            section.addRow(suite[i].name,
                           std::vector<sim::Cell>(rows[i]));
    });
}
