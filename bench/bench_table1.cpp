/**
 * @file
 * Regenerates Table 1 (benchmark summary): static and dynamic counts
 * of conditional and indirect branches on the test input of every
 * benchmark, with the paper's numbers alongside for comparison.
 */

#include "bench_common.h"

#include "trace/trace_stats.h"
#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    bench::banner("Table 1: Benchmark Summary",
                  "test inputs; paper dynamic counts scaled by 1/20, "
                  "paper static counts by ~1/3 (DESIGN.md §3)");

    bench::RunSummary summary;
    sim::ParallelRunner runner(bench::parseJobs(argc, argv));
    const auto cache = bench::attachCache(runner, argc, argv);

    util::TablePrinter table({
        "Benchmark", "cond dynamic", "cond static", "ind dynamic",
        "ind static", "paper cond dyn", "paper cond st",
        "paper ind dyn", "paper ind st",
    });

    // Trace generation dominates here; shard it per benchmark and
    // assemble the rows in suite order.
    const auto &suite = workload::benchmarkSuite();
    const auto rows = runner.map<std::vector<std::string>>(
        suite.size(), [&](sim::ExperimentContext &, std::size_t i) {
            const auto &spec = suite[i];
            auto trace = workload::generateTrace(
                spec, workload::InputKind::Test);
            trace::TraceStats stats;
            stats.observeAll(trace);
            runner.addPredictions(trace.size());
            return std::vector<std::string>{
                spec.name,
                util::formatScaled(stats.dynamicConditional()),
                std::to_string(stats.staticConditional()),
                util::formatScaled(stats.dynamicIndirect()),
                std::to_string(stats.staticIndirect()),
                util::formatScaled(spec.paperDynamicCond),
                std::to_string(spec.paperStaticCond),
                util::formatScaled(spec.paperDynamicIndirect),
                std::to_string(spec.paperStaticInd),
            };
        });
    for (const auto &row : rows)
        table.addRow(std::vector<std::string>(row));
    table.print(std::cout);
    summary.print(runner);
    bench::reportCache(cache);
    return 0;
}
