/**
 * @file
 * Regenerates Figures 5 and 6: conditional branch misprediction rates
 * with a 16K byte predictor — gshare vs fixed length path vs variable
 * length path — for the SPEC (Fig. 5) and non-SPEC (Fig. 6)
 * benchmarks, plus the average reduction in mispredictions the paper
 * quotes (28.6% fewer than gshare on average).
 */

#include "bench_common.h"
#include "paper_reports.h"

int
main(int argc, char **argv)
{
    bench::Driver driver("bench_fig5_6", bench::fig5_6Title,
                         bench::fig5_6Configuration);
    return driver.run(argc, argv, bench::buildFig5_6);
}
