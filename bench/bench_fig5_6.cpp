/**
 * @file
 * Regenerates Figures 5 and 6: conditional branch misprediction rates
 * with a 16K byte predictor — gshare vs fixed length path vs variable
 * length path — for the SPEC (Fig. 5) and non-SPEC (Fig. 6)
 * benchmarks, plus the average reduction in mispredictions the paper
 * quotes (28.6% fewer than gshare on average).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    constexpr std::size_t bytes = 16384;
    bench::banner("Figures 5 & 6: Conditional Misprediction Rates",
                  "16K byte predictor, test inputs");

    bench::RunSummary summary;
    sim::ParallelRunner runner(bench::parseJobs(argc, argv));
    const auto cache = bench::attachCache(runner, argc, argv);
    const unsigned global_length =
        runner.globalConditionalLength(bytes);
    std::cout << "global fixed path length: " << global_length << "\n";

    // All 16 comparisons run sharded across the workers; the rows come
    // back in suite order regardless of scheduling.
    const auto &suite = workload::benchmarkSuite();
    const auto rows =
        runner.compareConditionalSuite(suite, bytes, global_length);

    double total_reduction = 0.0;
    double worst_reduction = 1e9, best_reduction = -1e9;
    std::string worst_name, best_name;
    unsigned count = 0;

    for (const bool spec_group : {true, false}) {
        util::TablePrinter table({"Benchmark", "gshare (%)",
                                  "fixed length path (%)",
                                  "variable length path (%)",
                                  "reduction vs gshare (%)"});
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const auto &spec = suite[i];
            if (spec.isSpec != spec_group)
                continue;
            const auto &row = rows[i];
            const auto &gshare = row.entry(sim::names::gshare);
            const auto &flp = row.entry(sim::names::flp);
            const auto &vlp = row.entry(sim::names::vlp);
            const double cut = bench::reduction(gshare, vlp);
            table.addRow({
                spec.name,
                bench::rate(gshare.rate),
                bench::rate(flp.rate),
                bench::rate(vlp.rate),
                bench::rate(cut),
            });
            total_reduction += cut;
            ++count;
            if (cut < worst_reduction) {
                worst_reduction = cut;
                worst_name = spec.name;
            }
            if (cut > best_reduction) {
                best_reduction = cut;
                best_name = spec.name;
            }
        }
        std::cout << (spec_group ? "\nFigure 5 (SPECint95)\n"
                                 : "\nFigure 6 (non-SPEC)\n");
        table.print(std::cout);
    }

    std::cout << "\naverage reduction in mispredictions vs gshare: "
              << bench::rate(total_reduction / count)
              << "%  (paper: 28.6%)\n"
              << "largest reduction: " << bench::rate(best_reduction)
              << "% for " << best_name << "  (paper: 68.6% for perl)\n"
              << "smallest reduction: " << bench::rate(worst_reduction)
              << "% for " << worst_name << "  (paper: 7.4% for pgp)\n";
    summary.print(runner);
    bench::reportCache(cache);
    return 0;
}
