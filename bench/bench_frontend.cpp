/**
 * @file
 * Fetch-bundle front-end sweep (ours — not a paper table): runs the
 * speculative FetchEngine at fetch widths m ∈ {1, 2, 4} over gshare,
 * the fixed length path predictor (per-benchmark tuned length), and
 * the variable length path predictor, reporting branch throughput and
 * IPC next to the misprediction rate. The VLP slot carries an HFNT so
 * its §4.3 re-predict bubbles are charged in-line, and the FLP/VLP
 * counter tables (and the HFNT) are banked m ways, so same-bank
 * structural hazards split bundles.
 *
 * Every engine run doubles as an equivalence tripwire: the retire-order
 * engine and every fetch-bundle configuration must reproduce the
 * Simulator's branch and misprediction counts bit for bit, or the
 * binary aborts — speculation may move cycles around, never accuracy.
 */

#include "bench_common.h"

#include "core/hfnt.h"
#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/budget.h"
#include "predictors/gshare.h"
#include "sim/frontend.h"
#include "sim/simulator.h"
#include "util/logging.h"
#include "workload/benchmarks.h"

namespace {

using namespace vlp;

constexpr std::size_t budgetBytes = 16384;
constexpr unsigned hfntIndexBits = 10;

/** One fresh predictor trio (engine runs must not share state). */
struct Trio
{
    pred::GsharePredictor gshare;
    core::PathConditionalPredictor flp;
    core::PathConditionalPredictor vlp;

    Trio(unsigned k, unsigned tuned_length,
         const core::HashAssignment &assignment)
        : gshare(k), flp(k, tuned_length), vlp(k, assignment)
    {
    }

    void
    registerWith(sim::FetchEngine &engine)
    {
        engine.addConditional(&gshare);
        engine.addConditional(&flp);
        engine.addConditional(&vlp);
    }
};

/** Abort unless @p actual matches the Simulator's counts exactly. */
void
requireEquivalent(const std::string &benchmark, const std::string &mode,
                  const std::vector<sim::PredictorResult> &expected,
                  const std::vector<sim::PredictorResult> &actual)
{
    if (expected.size() != actual.size())
        util::fatal("front-end equivalence tripwire: result count "
                    "mismatch on " + benchmark + " (" + mode + ")");
    for (std::size_t i = 0; i < expected.size(); ++i) {
        if (expected[i].branches != actual[i].branches
            || expected[i].mispredictions != actual[i].mispredictions)
            util::fatal("front-end equivalence tripwire: "
                        + expected[i].name + " diverged on "
                        + benchmark + " (" + mode + ")");
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Driver driver(
        "bench_frontend", "Fetch-bundle front-end sweep",
        "16K byte conditional predictors; m-way banked tables and "
        "HFNT; 10-cycle flush, 1-cycle re-predict bubble");
    return driver.run(argc, argv, [](sim::ParallelRunner &runner,
                                     sim::Report &report) {
        sim::Section &section = report.addSection("frontend");
        section.columns = {{"benchmark"},
                           {"predictor"},
                           {"m"},
                           {"mispredict %"},
                           {"branches/cycle"},
                           {"IPC"},
                           {"re-predict bubbles"},
                           {"bank conflicts"},
                           {"bundles"}};

        const std::vector<std::string> names = {"gcc", "go", "perl",
                                                "m88ksim"};
        const std::vector<unsigned> widths = {1, 2, 4};
        const std::vector<std::string> labels = {
            sim::names::gshare, sim::names::flp, sim::names::vlp};

        const auto rows = runner.map<std::vector<std::vector<sim::Cell>>>(
            names.size(),
            [&](sim::ExperimentContext &context, std::size_t i) {
                const std::string &name = names[i];
                const auto &spec = workload::findBenchmark(name);
                const unsigned k =
                    pred::conditionalIndexBits(budgetBytes);
                const core::HashAssignment &assignment =
                    context.conditionalAssignment(spec, k);
                const unsigned tuned =
                    context.conditionalSweep(spec, k).bestLength();
                const auto test_trace =
                    context.trace(spec, workload::InputKind::Test);

                // Retire-order reference: today's Simulator.
                Trio reference(k, tuned, assignment);
                sim::Simulator simulator;
                simulator.addConditional(&reference.gshare);
                simulator.addConditional(&reference.flp);
                simulator.addConditional(&reference.vlp);
                test_trace->reset();
                simulator.run(*test_trace);
                const auto expected = simulator.conditionalResults();
                for (const auto &result : expected)
                    runner.addPredictions(result.branches);

                // Tripwire 1: the engine's retire-order mode.
                {
                    sim::FrontendParameters parameters;
                    parameters.mode = sim::FrontendMode::RetireOrder;
                    parameters.chaosIdentity = name;
                    Trio trio(k, tuned, assignment);
                    sim::FetchEngine engine(parameters);
                    trio.registerWith(engine);
                    test_trace->reset();
                    engine.run(*test_trace);
                    requireEquivalent(name, "retire-order", expected,
                                      engine.conditionalResults());
                }

                // The sweep: each width is a fresh speculative engine,
                // and tripwire 2 holds its accuracy to the reference.
                std::vector<std::vector<sim::Cell>> result_rows;
                for (unsigned m : widths) {
                    sim::FrontendParameters parameters;
                    parameters.mode = sim::FrontendMode::FetchBundle;
                    parameters.bundleWidth = m;
                    parameters.chaosIdentity = name;

                    Trio trio(k, tuned, assignment);
                    trio.flp.setBanks(m);
                    trio.vlp.setBanks(m);
                    core::HashFunctionNumberTable hfnt(hfntIndexBits);
                    hfnt.setBanks(m);

                    sim::FetchEngine engine(parameters);
                    trio.registerWith(engine);
                    engine.attachHfnt(
                        2, &hfnt,
                        [&assignment](const trace::BranchRecord &r) {
                            return assignment.lookup(r.pc);
                        });
                    test_trace->reset();
                    engine.run(*test_trace);
                    requireEquivalent(
                        name, "fetch-bundle m=" + std::to_string(m),
                        expected, engine.conditionalResults());

                    for (std::size_t p = 0; p < labels.size(); ++p) {
                        const sim::FrontendResult &timing =
                            engine.conditionalTiming(p);
                        const double instructions =
                            static_cast<double>(timing.branches)
                            * parameters.instructionsPerBranch;
                        result_rows.push_back(std::vector<sim::Cell>{
                            sim::Cell::text(name),
                            sim::Cell::text(labels[p]),
                            sim::Cell::count(m),
                            sim::Cell::percent(
                                util::percent(timing.mispredictions,
                                              timing.branches)),
                            sim::Cell::real(timing.branchesPerCycle(),
                                            3),
                            sim::Cell::real(timing.ipc(instructions),
                                            2),
                            sim::Cell::count(timing.repredictEvents),
                            sim::Cell::count(timing.bankConflicts),
                            sim::Cell::count(timing.bundles),
                        });
                    }
                }
                return result_rows;
            });

        for (std::size_t i = 0; i < names.size(); ++i)
            for (const auto &cells : rows[i])
                section.addRow(names[i],
                               std::vector<sim::Cell>(cells));
        section.footer =
            "\nAccuracy is bit-identical to the retire-order "
            "simulator at every width (enforced); wider bundles only "
            "buy throughput until flushes and bank conflicts eat the "
            "slots.\n";
    });
}
