/**
 * @file
 * Shared bench driver implementation.
 */

#include "bench_common.h"

#include <exception>
#include <iostream>

#include "store/artifact_store.h"
#include "util/logging.h"

namespace bench {

using namespace vlp;

void
RunSummary::print(std::uint64_t predictions, unsigned jobs) const
{
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start_);
    const double seconds = elapsed.count();
    const double per_second =
        seconds > 0.0 ? static_cast<double>(predictions) / seconds
                      : 0.0;
    std::cerr << "run summary: " << util::formatCount(predictions)
              << " branch predictions in "
              << util::formatDouble(seconds, 2) << " s ("
              << util::formatScaled(
                     static_cast<std::uint64_t>(per_second))
              << " branches/s; jobs=" << jobs << ")\n";
}

Driver::Driver(std::string program, std::string title,
               std::string configuration)
    : title_(std::move(title)),
      configuration_(std::move(configuration)),
      parser_(std::move(program), title_ + " — " + configuration_)
{
    options_.registerFlags(parser_);
    output_.registerFlags(parser_);
}

int
Driver::run(int argc, char **argv,
            const std::function<void(sim::ParallelRunner &,
                                     sim::Report &)> &body)
{
    parser_.parse(argc, argv);

    sim::Report report;
    report.title = title_;
    report.configuration = configuration_;
    report.banner = true;
    report.scale = util::workloadScale();

    RunSummary summary;
    sim::ParallelRunner runner(static_cast<unsigned>(options_.jobs));
    const auto store = options_.attachStore(runner);

    try {
        body(runner, report);
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }

    report.setMeta("jobs", std::uint64_t{runner.jobs()});
    report.setMeta("scale", util::formatDouble(report.scale, 3));
    report.setMeta("predictions", runner.predictions());
    if (store) {
        const store::StoreCounters counters = store->counters();
        report.setMeta("cacheHits", counters.hits);
        report.setMeta("cacheMisses", counters.misses);
        report.setMeta("cacheInserts", counters.inserts);
    }

    try {
        output_.write(report);
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }

    summary.print(runner);
    sim::reportCacheCounters(store.get());
    return 0;
}

} // namespace bench
