/**
 * @file
 * google-benchmark throughput benchmarks for trace ingestion: raw
 * byte delivery (stdio read loop vs zero-copy mmap windows), content
 * hashing (the historical two-sequential-pass FNV kernel vs the fused
 * multi-stream kernel on both backends), and end-to-end ingestion of
 * a .vbt corpus — the legacy recipe (separate hash, validate, and
 * replay opens over stdio) against the pipelined single-pass mmap
 * path the suite runner now uses. Every benchmark reports
 * bytes_per_second over the corpus bytes ingested, so the ratio
 * between the legacy and fast end-to-end lines is the ingestion
 * speedup (CI commits the JSON as BENCH_ingest.json).
 *
 * Digest honesty: before timing anything, the fused kernels' output
 * is checked byte-for-byte against the two-pass replica — a
 * throughput win with a different hash would silently invalidate
 * every cache key.
 */

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "sim/run_options.h"
#include "trace/byte_file.h"
#include "trace/content_hash.h"
#include "trace/mmap_file.h"
#include "trace/prefetch.h"
#include "trace/streaming.h"
#include "trace/trace_io.h"
#include "util/args.h"
#include "util/checksum.h"
#include "util/logging.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;
using namespace vlp;

/** Records per generated trace (~27 MB each at 18 bytes/record —
 *  large enough that per-open overheads vanish into the stream). */
constexpr std::size_t traceRecords = 1'500'000;

/** Traces in the benchmark corpus. */
constexpr std::size_t corpusTraces = 4;

/** Read/hash block size for the stdio paths (matches the streaming
 *  reader's order of magnitude). */
constexpr std::size_t blockBytes = 64 * 1024;

/** A deterministic mixed conditional/indirect trace. */
trace::VectorTraceSource
makeTrace(std::uint64_t seed, std::size_t records)
{
    util::Rng rng(seed);
    trace::VectorTraceSource source;
    for (std::size_t i = 0; i < records; ++i) {
        trace::BranchRecord record;
        if (rng.nextBool(0.7)) {
            record.kind = trace::BranchKind::Conditional;
            record.pc = 0x1000 + 16 * rng.nextBelow(64);
            record.taken = ((record.pc >> 4) + i / 7) % 3 != 0;
            record.nextPc =
                record.taken ? record.pc + 64 : record.pc + 4;
        } else {
            record.kind = trace::BranchKind::IndirectJump;
            record.pc = 0x8000 + 32 * rng.nextBelow(8);
            record.taken = true;
            record.nextPc = 0x20000 + 256 * rng.nextBelow(6);
        }
        source.append(record);
    }
    return source;
}

/** The on-disk benchmark corpus, generated once per process. */
struct Corpus
{
    std::string directory;
    std::vector<std::string> paths;
    std::uint64_t totalBytes = 0;
};

const Corpus &
corpus()
{
    static const Corpus made = [] {
        Corpus c;
        c.directory = (fs::temp_directory_path()
                       / ("vlpsim_bench_ingest_"
                          + std::to_string(::getpid())))
                          .string();
        fs::remove_all(c.directory);
        fs::create_directories(c.directory);
        for (std::size_t i = 0; i < corpusTraces; ++i) {
            const std::string path =
                c.directory + "/trace" + std::to_string(i) + ".vbt";
            trace::saveTrace(makeTrace(41 + i, traceRecords), path);
            c.paths.push_back(path);
            c.totalBytes += fs::file_size(path);
        }
        return c;
    }();
    return made;
}

/**
 * The historical content hash, exactly as shipped before the fused
 * kernel: two *sequential* FNV-1a streams over stdio blocks — each
 * block is walked twice, and each walk is one serial multiply chain.
 */
std::string
legacySequentialHash(trace::ByteFile &file)
{
    util::Fnv1a low;
    util::Fnv1a high(util::Fnv1a::offsetBasis
                     ^ trace::ContentHasher::highSeedXor);
    file.seek(0);
    std::array<std::uint8_t, blockBytes> buffer;
    for (;;) {
        const std::size_t got = file.read(buffer.data(), buffer.size());
        if (got == 0)
            break;
        low.update(buffer.data(), got);
        high.update(buffer.data(), got);
    }
    char text[33];
    std::snprintf(text, sizeof(text), "%016llx%016llx",
                  static_cast<unsigned long long>(high.digest()),
                  static_cast<unsigned long long>(low.digest()));
    return text;
}

/** Drain a reader, returning the record count (keeps decode honest). */
std::uint64_t
drain(trace::TraceSource &reader)
{
    trace::BranchRecord record;
    std::uint64_t count = 0;
    while (reader.next(record))
        ++count;
    return count;
}

/**
 * The legacy per-trace ingestion recipe the suite runner used to run:
 * one stdio open to hash (two sequential FNV passes), one to validate
 * the header, one to replay every record with the stream checksum.
 */
std::uint64_t
ingestLegacyStdio(const std::string &path)
{
    const std::string digest = [&] {
        const auto file = trace::openByteFile(path);
        return legacySequentialHash(*file);
    }();
    benchmark::DoNotOptimize(digest.data());
    {
        trace::StreamingTraceReader validate(trace::openByteFile(path));
        benchmark::DoNotOptimize(validate.count());
    }
    trace::StreamingTraceReader replay(trace::openByteFile(path));
    return drain(replay);
}

/**
 * The single-pass recipe: one open through the hashing decorator
 * (validate + content hash share it; zero-copy when the file maps),
 * then the replay pass the suite's sweeps make over the same session.
 */
std::uint64_t
ingestFast(const std::string &path, trace::ReadMode mode)
{
    auto hashing = std::make_unique<trace::HashingByteFile>(
        trace::openByteFileFast(path, mode));
    trace::HashingByteFile &hasher = *hashing;
    trace::StreamingTraceReader reader(std::move(hashing));
    const std::string digest = hasher.finish();
    benchmark::DoNotOptimize(digest.data());
    reader.reset();
    return drain(reader);
}

/** Abort unless the fused kernels reproduce the legacy digests. */
void
verifyDigests()
{
    const std::string &path = corpus().paths.front();
    const auto stdio_file = trace::openByteFile(path);
    const std::string legacy = legacySequentialHash(*stdio_file);
    if (trace::hashTraceFile(path) != legacy)
        util::fatal("fused stdio hash diverged from legacy digest");
    const auto mapped =
        trace::openByteFileFast(path, trace::ReadMode::Mmap);
    if (trace::hashTraceFile(*mapped) != legacy)
        util::fatal("fused mmap hash diverged from legacy digest");
}

// --- raw byte delivery ----------------------------------------------

void
readAllTouching(trace::ByteFile &file)
{
    std::uint64_t sum = 0;
    const std::uint64_t total = file.size();
    std::uint64_t offset = 0;
    file.seek(0);
    std::array<std::uint8_t, blockBytes> buffer;
    for (;;) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(buffer.size(), total - offset));
        if (want == 0)
            break;
        const std::uint8_t *window = file.view(offset, want);
        std::size_t got = want;
        if (window == nullptr) {
            got = file.read(buffer.data(), buffer.size());
            if (got == 0)
                break;
            window = buffer.data();
        }
        // One XOR per 64 bytes: touch every cache line without the
        // benchmark becoming compute-bound.
        for (std::size_t i = 0; i < got; i += 64)
            sum ^= window[i];
        offset += got;
    }
    benchmark::DoNotOptimize(sum);
}

void
BM_ReadStdio(benchmark::State &state)
{
    for (auto _ : state) {
        for (const std::string &path : corpus().paths) {
            const auto file = trace::openByteFile(path);
            readAllTouching(*file);
        }
    }
    state.SetBytesProcessed(
        state.iterations()
        * static_cast<std::int64_t>(corpus().totalBytes));
}
BENCHMARK(BM_ReadStdio)->Unit(benchmark::kMillisecond);

void
BM_ReadMmap(benchmark::State &state)
{
    for (auto _ : state) {
        for (const std::string &path : corpus().paths) {
            const auto file =
                trace::openByteFileFast(path, trace::ReadMode::Mmap);
            readAllTouching(*file);
        }
    }
    state.SetBytesProcessed(
        state.iterations()
        * static_cast<std::int64_t>(corpus().totalBytes));
}
BENCHMARK(BM_ReadMmap)->Unit(benchmark::kMillisecond);

// --- content hashing ------------------------------------------------

void
BM_HashLegacyTwoPass(benchmark::State &state)
{
    for (auto _ : state) {
        for (const std::string &path : corpus().paths) {
            const auto file = trace::openByteFile(path);
            const std::string digest = legacySequentialHash(*file);
            benchmark::DoNotOptimize(digest.data());
        }
    }
    state.SetBytesProcessed(
        state.iterations()
        * static_cast<std::int64_t>(corpus().totalBytes));
}
BENCHMARK(BM_HashLegacyTwoPass)->Unit(benchmark::kMillisecond);

void
BM_HashFusedStdio(benchmark::State &state)
{
    for (auto _ : state) {
        for (const std::string &path : corpus().paths) {
            const auto file = trace::openByteFile(path);
            const std::string digest = trace::hashTraceFile(*file);
            benchmark::DoNotOptimize(digest.data());
        }
    }
    state.SetBytesProcessed(
        state.iterations()
        * static_cast<std::int64_t>(corpus().totalBytes));
}
BENCHMARK(BM_HashFusedStdio)->Unit(benchmark::kMillisecond);

void
BM_HashFusedMmap(benchmark::State &state)
{
    for (auto _ : state) {
        for (const std::string &path : corpus().paths) {
            const auto file =
                trace::openByteFileFast(path, trace::ReadMode::Mmap);
            const std::string digest = trace::hashTraceFile(*file);
            benchmark::DoNotOptimize(digest.data());
        }
    }
    state.SetBytesProcessed(
        state.iterations()
        * static_cast<std::int64_t>(corpus().totalBytes));
}
BENCHMARK(BM_HashFusedMmap)->Unit(benchmark::kMillisecond);

// --- end-to-end corpus ingestion ------------------------------------

void
BM_IngestLegacyStdio(benchmark::State &state)
{
    std::uint64_t records = 0;
    for (auto _ : state) {
        for (const std::string &path : corpus().paths)
            records += ingestLegacyStdio(path);
    }
    benchmark::DoNotOptimize(records);
    state.SetBytesProcessed(
        state.iterations()
        * static_cast<std::int64_t>(corpus().totalBytes));
}
BENCHMARK(BM_IngestLegacyStdio)->Unit(benchmark::kMillisecond);

void
BM_IngestFastStdio(benchmark::State &state)
{
    std::uint64_t records = 0;
    for (auto _ : state) {
        for (const std::string &path : corpus().paths)
            records += ingestFast(path, trace::ReadMode::Stdio);
    }
    benchmark::DoNotOptimize(records);
    state.SetBytesProcessed(
        state.iterations()
        * static_cast<std::int64_t>(corpus().totalBytes));
}
BENCHMARK(BM_IngestFastStdio)->Unit(benchmark::kMillisecond);

void
BM_IngestFastMmap(benchmark::State &state)
{
    std::uint64_t records = 0;
    for (auto _ : state) {
        for (const std::string &path : corpus().paths)
            records += ingestFast(path, trace::ReadMode::Mmap);
    }
    benchmark::DoNotOptimize(records);
    state.SetBytesProcessed(
        state.iterations()
        * static_cast<std::int64_t>(corpus().totalBytes));
}
BENCHMARK(BM_IngestFastMmap)->Unit(benchmark::kMillisecond);

/**
 * The suite frontend as actually wired: a TracePrefetcher opening,
 * validating, and hashing the corpus (bounded window, mmap-auto
 * backend), the consumer replaying each session — the pipelined
 * counterpart of BM_IngestLegacyStdio.
 */
void
BM_SuiteIngestPipelinedMmap(benchmark::State &state)
{
    std::uint64_t records = 0;
    for (auto _ : state) {
        trace::TracePrefetcher::Options options;
        options.opener = trace::fastOpener(trace::ReadMode::Mmap);
        options.window = 4;
        options.threads = 2;
        trace::TracePrefetcher prefetch(corpus().paths, options);
        for (std::size_t i = 0; i < corpus().paths.size(); ++i) {
            trace::PrefetchedTrace open = prefetch.take(i);
            if (open.error)
                std::rethrow_exception(open.error);
            benchmark::DoNotOptimize(open.contentHash.data());
            open.session->reset();
            records += drain(*open.session);
        }
    }
    benchmark::DoNotOptimize(records);
    state.SetBytesProcessed(
        state.iterations()
        * static_cast<std::int64_t>(corpus().totalBytes));
}
BENCHMARK(BM_SuiteIngestPipelinedMmap)->Unit(benchmark::kMillisecond);

} // anonymous namespace

/**
 * Like bench_throughput's main: vlpsim flags are consumed before
 * google-benchmark sees the command line; unrecognized
 * `--benchmark_*=value` flags pass through via extra().
 */
int
main(int argc, char **argv)
{
    util::ArgParser parser(
        "bench_ingest",
        "trace-ingestion throughput: stdio vs zero-copy mmap, legacy "
        "two-pass vs fused single-pass hashing, and the pipelined "
        "suite frontend (unknown --flag=value arguments are "
        "forwarded to google-benchmark)");
    parser.allowExtra();
    parser.parse(argc, argv);

    std::vector<std::string> forwarded = parser.extra();
    std::vector<char *> filtered;
    filtered.push_back(argv[0]);
    for (std::string &argument : forwarded)
        filtered.push_back(argument.data());
    int filtered_argc = static_cast<int>(filtered.size());
    filtered.push_back(nullptr);

    corpus();        // generate before any timing
    verifyDigests(); // a fast-but-wrong hash must abort the run

    benchmark::Initialize(&filtered_argc, filtered.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                               filtered.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    fs::remove_all(corpus().directory);
    return 0;
}
