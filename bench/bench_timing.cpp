/**
 * @file
 * Front-end timing projection (ours — not a paper table): converts the
 * measured misprediction rates into estimated fetch-engine cycles per
 * the Section 1 motivation, including the HFNT re-predict bubbles of
 * the pipelined VLP organization (Section 4.3). Answers: does VLP's
 * accuracy win survive its two-cycle pipelined implementation?
 */

#include "bench_common.h"

#include "core/hfnt.h"
#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/gshare.h"
#include "sim/timing.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    constexpr std::size_t bytes = 16384;
    bench::banner("Front-end timing projection",
                  "16K byte conditional predictors; 10-cycle flush, "
                  "1-cycle HFNT re-predict bubble, 4-wide fetch");

    sim::TimingParameters parameters;
    bench::RunSummary summary;
    sim::ParallelRunner runner(bench::parseJobs(argc, argv));
    const auto cache = bench::attachCache(runner, argc, argv);

    util::TablePrinter table({"benchmark", "gshare IPC", "VLP IPC",
                              "VLP IPC (with HFNT bubbles)",
                              "speedup vs gshare"});

    const std::vector<std::string> names = {"gcc", "go", "perl",
                                            "m88ksim"};
    const auto rows = runner.map<std::vector<std::string>>(
        names.size(),
        [&](sim::ExperimentContext &context, std::size_t i) {
            const std::string &name = names[i];
            const auto &spec = workload::findBenchmark(name);
            const unsigned k = pred::conditionalIndexBits(bytes);
            const core::HashAssignment &assignment =
                context.conditionalAssignment(spec, k);

            pred::GsharePredictor gshare(k);
            core::PathConditionalPredictor vlp(k, assignment);
            sim::Simulator simulator;
            simulator.addConditional(&gshare);
            simulator.addConditional(&vlp);

            // Drive the HFNT alongside to count re-predict events.
            core::HashFunctionNumberTable hfnt(10);
            const auto test_trace =
                context.trace(spec, workload::InputKind::Test);
            test_trace->reset();
            trace::BranchRecord record;
            while (test_trace->next(record)) {
                if (record.isConditional()) {
                    hfnt.predictNumber(record.pc);
                    hfnt.update(record.pc,
                                assignment.lookup(record.pc));
                }
            }
            test_trace->reset();
            simulator.run(*test_trace);

            const auto results = simulator.conditionalResults();
            for (const auto &result : results)
                runner.addPredictions(result.branches);
            const double instructions =
                static_cast<double>(results[0].branches)
                * parameters.instructionsPerBranch;

            const auto gshare_time =
                sim::estimateTiming(parameters, results[0]);
            const auto vlp_time =
                sim::estimateTiming(parameters, results[1]);
            const auto vlp_time_hfnt = sim::estimateTiming(
                parameters, results[1], hfnt.mismatches());

            return std::vector<std::string>{
                name,
                bench::rate(gshare_time.ipc(instructions)),
                bench::rate(vlp_time.ipc(instructions)),
                bench::rate(vlp_time_hfnt.ipc(instructions)),
                bench::rate(sim::speedup(gshare_time, vlp_time_hfnt)),
            };
        });
    for (const auto &row : rows)
        table.addRow(std::vector<std::string>(row));
    table.print(std::cout);
    std::cout << "\nEven charging every HFNT mismatch a re-predict "
                 "bubble, the accuracy win dominates.\n";
    summary.print(runner);
    bench::reportCache(cache);
    return 0;
}
