/**
 * @file
 * Front-end timing projection (ours — not a paper table): converts the
 * measured misprediction rates into estimated fetch-engine cycles per
 * the Section 1 motivation, including the HFNT re-predict bubbles of
 * the pipelined VLP organization (Section 4.3). Answers: does VLP's
 * accuracy win survive its two-cycle pipelined implementation?
 */

#include "bench_common.h"

#include <stdexcept>

#include "core/hfnt.h"
#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/budget.h"
#include "predictors/gshare.h"
#include "sim/simulator.h"
#include "sim/timing.h"
#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    bench::Driver driver(
        "bench_timing", "Front-end timing projection",
        "16K byte conditional predictors; configurable fetch width, "
        "flush penalty, and HFNT re-predict bubble");

    sim::TimingParameters parameters;
    const auto add_double = [&driver](const std::string &flag,
                                      const std::string &help,
                                      double *out) {
        driver.parser().addOption(
            flag, "X", help, [flag, out](const std::string &text) {
                std::size_t consumed = 0;
                double value = 0.0;
                try {
                    value = std::stod(text, &consumed);
                } catch (const std::exception &) {
                    consumed = 0;
                }
                if (consumed != text.size() || !(value >= 0.0))
                    throw std::runtime_error(
                        flag + " expects a non-negative number");
                *out = value;
            });
    };
    add_double("--fetch-width",
               "instructions fetched per cycle (default 4)",
               &parameters.fetchWidth);
    add_double("--mispredict-penalty",
               "flush cycles per misprediction (default 10)",
               &parameters.mispredictPenaltyCycles);
    add_double("--repredict-penalty",
               "bubble cycles per HFNT mismatch (default 1)",
               &parameters.repredictPenaltyCycles);

    return driver.run(argc, argv, [&parameters](
                                      sim::ParallelRunner &runner,
                                      sim::Report &report) {
        constexpr std::size_t bytes = 16384;

        sim::Section &section = report.addSection("timing");
        section.columns = {{"benchmark"},
                           {"gshare IPC"},
                           {"VLP IPC"},
                           {"VLP IPC (with HFNT bubbles)"},
                           {"speedup vs gshare"}};

        const std::vector<std::string> names = {"gcc", "go", "perl",
                                                "m88ksim"};
        const auto rows = runner.map<std::vector<sim::Cell>>(
            names.size(),
            [&](sim::ExperimentContext &context, std::size_t i) {
                const std::string &name = names[i];
                const auto &spec = workload::findBenchmark(name);
                const unsigned k = pred::conditionalIndexBits(bytes);
                const core::HashAssignment &assignment =
                    context.conditionalAssignment(spec, k);

                pred::GsharePredictor gshare(k);
                core::PathConditionalPredictor vlp(k, assignment);
                sim::Simulator simulator;
                simulator.addConditional(&gshare);
                simulator.addConditional(&vlp);

                // Drive the HFNT alongside to count re-predict
                // events.
                core::HashFunctionNumberTable hfnt(10);
                const auto test_trace =
                    context.trace(spec, workload::InputKind::Test);
                test_trace->reset();
                trace::BranchRecord record;
                while (test_trace->next(record)) {
                    if (record.isConditional()) {
                        hfnt.predictNumber(record.pc);
                        hfnt.update(record.pc,
                                    assignment.lookup(record.pc));
                    }
                }
                test_trace->reset();
                simulator.run(*test_trace);

                const auto results = simulator.conditionalResults();
                for (const auto &result : results)
                    runner.addPredictions(result.branches);
                const double instructions =
                    static_cast<double>(results[0].branches)
                    * parameters.instructionsPerBranch;

                const auto gshare_time =
                    sim::estimateTiming(parameters, results[0]);
                const auto vlp_time =
                    sim::estimateTiming(parameters, results[1]);
                const auto vlp_time_hfnt = sim::estimateTiming(
                    parameters, results[1], hfnt.mismatches());

                return std::vector<sim::Cell>{
                    sim::Cell::text(name),
                    sim::Cell::real(gshare_time.ipc(instructions),
                                    2),
                    sim::Cell::real(vlp_time.ipc(instructions), 2),
                    sim::Cell::real(vlp_time_hfnt.ipc(instructions),
                                    2),
                    sim::Cell::real(
                        sim::speedup(gshare_time, vlp_time_hfnt), 2),
                };
            });
        for (std::size_t i = 0; i < names.size(); ++i)
            section.addRow(names[i], std::vector<sim::Cell>(rows[i]));
        section.footer =
            "\nEven charging every HFNT mismatch a re-predict "
            "bubble, the accuracy win dominates.\n";
    });
}
