/**
 * @file
 * Ablation studies for the design choices the paper calls out:
 *
 *  1. rotating targets before XOR (Section 3.3) vs plain XOR;
 *  2. storing return targets in the THB (Section 3.2; the paper found
 *     accuracy "does not strongly depend" on it and left them out);
 *  3. the number of profiling candidates per branch (the paper uses 3)
 *     and step-2 iterations (the paper uses 7);
 *  4. implementing only a subset of hash functions
 *     {1,2,4,8,16,32} (Section 3.1's cost-reduction note);
 *  5. HFNT accuracy: how often the pipelined predictor would have to
 *     re-predict (Section 4.3).
 */

#include "bench_common.h"

#include "core/hfnt.h"
#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/budget.h"
#include "workload/benchmarks.h"

namespace {

using namespace vlp;

constexpr std::size_t budgetBytes = 16384;

/** Evaluate a conditional VLP configuration on gcc's test input. */
double
evaluateVlp(trace::VectorTraceSource &profile_trace,
            trace::VectorTraceSource &test_trace,
            core::ProfileOptions options,
            const std::vector<unsigned> *allowed_lengths = nullptr,
            std::uint64_t *branches_out = nullptr)
{
    core::ConditionalProfiler profiler(options);
    profile_trace.reset();
    core::HashAssignment assignment = profiler.profile(profile_trace);

    if (allowed_lengths != nullptr) {
        // Clamp every assignment down to the nearest implemented hash
        // function (Section 3.1: a subset may be implemented at
        // reduced benefit).
        auto clamp = [&](unsigned length) {
            unsigned best = allowed_lengths->front();
            for (unsigned candidate : *allowed_lengths) {
                if (candidate <= length)
                    best = candidate;
            }
            return best;
        };
        core::HashAssignment clamped(clamp(assignment.defaultLength()));
        for (const auto &[pc, length] : assignment.table())
            clamped.assign(pc, clamp(length));
        assignment = clamped;
    }

    core::PathConditionalPredictor vlp(options.indexBits, assignment,
                                       options.history);
    test_trace.reset();
    trace::BranchRecord record;
    std::uint64_t branches = 0, misses = 0;
    while (test_trace.next(record)) {
        if (record.isConditional()) {
            ++branches;
            if (vlp.predict(record) != record.taken)
                ++misses;
            vlp.update(record);
        }
        vlp.observe(record);
    }
    if (branches_out != nullptr)
        *branches_out = branches;
    return util::percent(misses, branches);
}

/** One ablation configuration: a label plus how to profile/evaluate. */
struct AblationConfig
{
    std::string label;
    core::ProfileOptions options;
    /** Clamp assignments to the {1,2,4,8,16,32} hash subset. */
    bool restrictSubset = false;
    /** Profile on the test input itself (generalization oracle). */
    bool oracle = false;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Driver driver(
        "bench_ablation",
        "Ablations: rotation, returns-in-THB, profiling "
        "parameters, hash-function subset, HFNT",
        "gcc, 16K byte conditional predictor, test input");
    return driver.run(argc, argv, [](sim::ParallelRunner &runner,
                                     sim::Report &report) {
    const auto &spec = workload::findBenchmark("gcc");

    core::ProfileOptions base;
    base.indexBits = pred::conditionalIndexBits(budgetBytes);

    std::vector<AblationConfig> configs;
    configs.push_back({"baseline (rotate, no returns, 3 candidates, "
                       "7 iterations, 32 hash functions)",
                       base, false, false});
    {
        core::ProfileOptions options = base;
        options.history.rotateTargets = false;
        configs.push_back({"no target rotation (plain XOR)", options,
                           false, false});
    }
    {
        core::ProfileOptions options = base;
        options.history.includeReturns = true;
        configs.push_back({"return targets stored in THB", options,
                           false, false});
    }
    for (const unsigned candidates : {1u, 2u, 5u}) {
        core::ProfileOptions options = base;
        options.candidates = candidates;
        options.iterations = std::max(7u, candidates);
        configs.push_back({std::to_string(candidates)
                               + " candidate(s) per branch",
                           options, false, false});
    }
    for (const unsigned iterations : {1u, 3u}) {
        core::ProfileOptions options = base;
        options.iterations = iterations;
        configs.push_back({std::to_string(iterations)
                               + " step-2 iteration(s)",
                           options, false, false});
    }
    configs.push_back({"hash functions restricted to {1,2,4,8,16,32}",
                       base, true, false});
    {
        // Section 6 future-work idea: save/restore history across
        // subroutine calls (after Jacobson et al.).
        core::ProfileOptions options = base;
        options.history.historyStack = true;
        configs.push_back({"history stack across calls (Section 6 "
                           "extension)",
                           options, false, false});
    }
    // Oracle profiling: select lengths on the *test* input itself.
    // The gap to the baseline row is the cost of profile-to-test
    // generalization (the paper's §3.4 motivation for resampling
    // user data à la ProfileMe).
    configs.push_back({"oracle: profiled on the test input itself",
                       base, false, true});

    // Every configuration re-profiles gcc from scratch, so the config
    // grid is the shard unit; each worker pulls private trace copies
    // from its own context (the cursor state is not shareable).
    const auto rates = runner.map<double>(
        configs.size(),
        [&](sim::ExperimentContext &context, std::size_t i) {
            const AblationConfig &config = configs[i];
            const auto profile_trace = context.trace(
                spec, config.oracle ? workload::InputKind::Test
                                    : workload::InputKind::Profile);
            const auto test_trace =
                context.trace(spec, workload::InputKind::Test);
            const std::vector<unsigned> subset = {1, 2, 4, 8, 16, 32};
            std::uint64_t branches = 0;
            const double rate = evaluateVlp(
                *profile_trace, *test_trace, config.options,
                config.restrictSubset ? &subset : nullptr, &branches);
            runner.addPredictions(branches);
            return rate;
        });

    sim::Section &ablations = report.addSection("ablations");
    ablations.columns = {{"configuration"}, {"VLP mispredict (%)"}};
    for (std::size_t i = 0; i < configs.size(); ++i)
        ablations.addRow(configs[i].label,
                         {sim::Cell::text(configs[i].label),
                          sim::Cell::percent(rates[i])});

    // --- HFNT re-predict rate (Section 4.3) --------------------------
    {
        auto &context = runner.context();
        const auto profile_ptr =
            context.trace(spec, workload::InputKind::Profile);
        const auto test_ptr =
            context.trace(spec, workload::InputKind::Test);
        trace::VectorTraceSource &profile_trace = *profile_ptr;
        trace::VectorTraceSource &test_trace = *test_ptr;
        core::ConditionalProfiler profiler(base);
        profile_trace.reset();
        const core::HashAssignment assignment =
            profiler.profile(profile_trace);

        sim::Section &hfnt_section = report.addSection("hfnt");
        hfnt_section.caption =
            "\nHFNT re-predict rates (prediction uses the "
            "table's number; decode reveals the actual):\n";
        hfnt_section.columns = {{"HFNT entries"},
                                {"size (bytes)"},
                                {"mismatch rate (%)"}};
        for (const unsigned bits : {6u, 8u, 10u, 12u}) {
            core::HashFunctionNumberTable hfnt(bits);
            test_trace.reset();
            trace::BranchRecord record;
            while (test_trace.next(record)) {
                if (!record.isConditional())
                    continue;
                hfnt.predictNumber(record.pc);
                hfnt.update(record.pc, assignment.lookup(record.pc));
            }
            hfnt_section.addRow(
                std::to_string(1u << bits),
                {
                    sim::Cell::count(1u << bits),
                    sim::Cell::count(hfnt.sizeBytes()),
                    sim::Cell::percent(hfnt.mismatchRate()),
                });
        }
    }
    });
}
