/**
 * @file
 * Table 2 and Figures 5 & 6 report builders.
 */

#include "paper_reports.h"

#include "bench_common.h"
#include "predictors/budget.h"
#include "sim/experiment.h"
#include "workload/benchmarks.h"

namespace bench {

using namespace vlp;

void
buildTable2(sim::ParallelRunner &runner, sim::Report &report)
{
    {
        sim::Section &section = report.addSection("conditional");
        section.caption = "\nConditional Branches\n";
        section.columns = {{"Table Size (KB)"},
                           {"Path Length"},
                           {"avg mispredict (%)"},
                           {"paper length"}};
        const std::size_t sizes[] = {1024, 4096, 16384, 65536,
                                     262144};
        const unsigned paper_lengths[] = {6, 9, 14, 16, 23};
        for (unsigned i = 0; i < 5; ++i) {
            const auto average =
                runner.averageConditionalSweep(sizes[i]);
            const unsigned best =
                runner.globalConditionalLength(sizes[i]);
            section.addRow(std::to_string(sizes[i]),
                           {
                               sim::Cell::real(sizes[i] / 1024.0, 0),
                               sim::Cell::count(best),
                               sim::Cell::percent(average[best - 1]),
                               sim::Cell::count(paper_lengths[i]),
                           });
        }
    }
    {
        sim::Section &section = report.addSection("indirect");
        section.caption = "\nIndirect Branches\n";
        section.columns = {{"Table Size (KB)"},
                           {"Path Length"},
                           {"avg mispredict (%)"},
                           {"paper length"}};
        const std::size_t sizes[] = {512, 2048, 8192, 32768};
        const unsigned paper_lengths[] = {11, 21, 21, 21};
        for (unsigned i = 0; i < 4; ++i) {
            const auto average =
                runner.averageIndirectSweep(sizes[i]);
            const unsigned best =
                runner.globalIndirectLength(sizes[i]);
            section.addRow(std::to_string(sizes[i]),
                           {
                               sim::Cell::real(sizes[i] / 1024.0, 1),
                               sim::Cell::count(best),
                               sim::Cell::percent(average[best - 1]),
                               sim::Cell::count(paper_lengths[i]),
                           });
        }
    }
}

void
buildFig5_6(sim::ParallelRunner &runner, sim::Report &report)
{
    constexpr std::size_t bytes = 16384;
    const unsigned global_length =
        runner.globalConditionalLength(bytes);
    report.addText("global-length",
                   "global fixed path length: "
                       + std::to_string(global_length) + "\n");
    report.setMeta("globalConditionalLength",
                   std::uint64_t{global_length});

    // All 16 comparisons run sharded across the workers; the rows
    // come back in suite order regardless of scheduling.
    const auto &suite = workload::benchmarkSuite();
    const auto rows =
        runner.compareConditionalSuite(suite, bytes, global_length);

    double total_reduction = 0.0;
    double worst_reduction = 1e9, best_reduction = -1e9;
    std::string worst_name, best_name;
    unsigned count = 0;

    for (const bool spec_group : {true, false}) {
        sim::Section &section = report.addSection(
            spec_group ? "figure5" : "figure6");
        section.caption = spec_group ? "\nFigure 5 (SPECint95)\n"
                                     : "\nFigure 6 (non-SPEC)\n";
        section.columns = {{"Benchmark"},
                           {"gshare (%)"},
                           {"fixed length path (%)"},
                           {"variable length path (%)"},
                           {"reduction vs gshare (%)"}};
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const auto &spec = suite[i];
            if (spec.isSpec != spec_group)
                continue;
            const auto &row = rows[i];
            const auto &gshare = row.entry(sim::names::gshare);
            const auto &flp = row.entry(sim::names::flp);
            const auto &vlp = row.entry(sim::names::vlp);
            const double cut = reduction(gshare, vlp);
            section.addRow(spec.name,
                           {
                               sim::Cell::text(spec.name),
                               sim::Cell::percent(gshare.rate),
                               sim::Cell::percent(flp.rate),
                               sim::Cell::percent(vlp.rate),
                               sim::Cell::percent(cut),
                           });
            total_reduction += cut;
            ++count;
            if (cut < worst_reduction) {
                worst_reduction = cut;
                worst_name = spec.name;
            }
            if (cut > best_reduction) {
                best_reduction = cut;
                best_name = spec.name;
            }
        }
    }

    report.addText(
        "summary",
        "\naverage reduction in mispredictions vs gshare: "
            + rate(total_reduction / count) + "%  (paper: 28.6%)\n"
            + "largest reduction: " + rate(best_reduction) + "% for "
            + best_name + "  (paper: 68.6% for perl)\n"
            + "smallest reduction: " + rate(worst_reduction)
            + "% for " + worst_name + "  (paper: 7.4% for pgp)\n");
}

} // namespace bench
