/**
 * @file
 * Regenerates Figure 10: indirect branch misprediction rates for gcc
 * over a range of predictor sizes (0.5K to 32K bytes) — the
 * Chang-Hao-Patt path and pattern target caches, fixed length path,
 * fixed length path (tuned), and variable length path.
 */

#include "bench_common.h"

#include "predictors/budget.h"
#include "workload/benchmarks.h"

namespace {

/** Everything one table size contributes to the printed figure. */
struct SizePoint
{
    vlp::sim::ComparisonRow row;
    unsigned globalLength = 0;
    unsigned tunedLength = 0;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace vlp;

    bench::Driver driver(
        "bench_fig10",
        "Figure 10: Indirect Misprediction Rates for Gcc",
        "predictor sizes 0.5K to 32K bytes, test input");
    return driver.run(argc, argv, [](sim::ParallelRunner &runner,
                                     sim::Report &report) {
        const auto &spec = workload::findBenchmark("gcc");

        sim::Section &section = report.addSection("sizes");
        section.columns = {{"Size (KB)"},
                           {"path CHP (%)"},
                           {"pattern CHP (%)"},
                           {"fixed length path (%)"},
                           {"fixed length path (tuned) (%)"},
                           {"variable length path (%)"},
                           {"global len"},
                           {"tuned len"}};

        const std::vector<std::size_t> sizes = {512, 2048, 8192,
                                                32768};
        const auto points = runner.map<SizePoint>(
            sizes.size(),
            [&](sim::ExperimentContext &context, std::size_t i) {
                const std::size_t bytes = sizes[i];
                SizePoint point;
                point.globalLength =
                    context.globalIndirectLength(bytes);
                point.tunedLength =
                    context
                        .indirectSweep(spec,
                                       pred::indirectIndexBits(bytes))
                        .bestLength();
                point.row = sim::compareIndirect(
                    context, spec, bytes, point.globalLength, true);
                for (const auto &entry : point.row.entries)
                    runner.addPredictions(entry.branches);
                return point;
            });

        double flp_cut_at_32k = 0.0, vlp_cut_at_32k = 0.0;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const std::size_t bytes = sizes[i];
            const auto &row = points[i].row;
            section.addRow(
                std::to_string(bytes),
                {
                    sim::Cell::real(bytes / 1024.0, 1),
                    sim::Cell::percent(
                        row.entry(sim::names::chpPath).rate),
                    sim::Cell::percent(
                        row.entry(sim::names::chpPattern).rate),
                    sim::Cell::percent(
                        row.entry(sim::names::flp).rate),
                    sim::Cell::percent(
                        row.entry(sim::names::flpTuned).rate),
                    sim::Cell::percent(
                        row.entry(sim::names::vlp).rate),
                    sim::Cell::count(points[i].globalLength),
                    sim::Cell::count(points[i].tunedLength),
                });
            if (bytes == 32768) {
                const auto &path = row.entry(sim::names::chpPath);
                const auto &pattern =
                    row.entry(sim::names::chpPattern);
                const auto &best_competing =
                    path.mispredictions < pattern.mispredictions
                        ? path
                        : pattern;
                flp_cut_at_32k = bench::reduction(
                    best_competing, row.entry(sim::names::flp));
                vlp_cut_at_32k = bench::reduction(
                    best_competing, row.entry(sim::names::vlp));
            }
        }
        section.footer =
            "\nat 32K bytes, reduction vs best competing predictor: "
            "FLP "
            + bench::rate(flp_cut_at_32k) + "% (paper 29%), VLP "
            + bench::rate(vlp_cut_at_32k) + "% (paper 51%)\n";
    });
}
