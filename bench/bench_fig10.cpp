/**
 * @file
 * Regenerates Figure 10: indirect branch misprediction rates for gcc
 * over a range of predictor sizes (0.5K to 32K bytes) — the
 * Chang-Hao-Patt path and pattern target caches, fixed length path,
 * fixed length path (tuned), and variable length path.
 */

#include "bench_common.h"

int
main()
{
    using namespace vlp;

    bench::banner("Figure 10: Indirect Misprediction Rates for Gcc",
                  "predictor sizes 0.5K to 32K bytes, test input");

    sim::ExperimentContext context;
    const auto &spec = workload::findBenchmark("gcc");

    util::TablePrinter table({"Size (KB)", "path CHP (%)",
                              "pattern CHP (%)",
                              "fixed length path (%)",
                              "fixed length path (tuned) (%)",
                              "variable length path (%)",
                              "global len", "tuned len"});

    double flp_cut_at_32k = 0.0, vlp_cut_at_32k = 0.0;
    for (const std::size_t bytes :
         {std::size_t{512}, std::size_t{2048}, std::size_t{8192},
          std::size_t{32768}}) {
        const unsigned global_length =
            context.globalIndirectLength(bytes);
        const unsigned tuned_length =
            context.indirectSweep(spec, pred::indirectIndexBits(bytes))
                .bestLength();
        const auto row = sim::compareIndirect(context, spec, bytes,
                                              global_length, true);
        table.addRow({
            util::formatDouble(bytes / 1024.0, 1),
            bench::rate(row.entry(sim::names::chpPath).rate),
            bench::rate(row.entry(sim::names::chpPattern).rate),
            bench::rate(row.entry(sim::names::flp).rate),
            bench::rate(row.entry(sim::names::flpTuned).rate),
            bench::rate(row.entry(sim::names::vlp).rate),
            std::to_string(global_length),
            std::to_string(tuned_length),
        });
        if (bytes == 32768) {
            const auto &path = row.entry(sim::names::chpPath);
            const auto &pattern = row.entry(sim::names::chpPattern);
            const auto &best_competing =
                path.mispredictions < pattern.mispredictions ? path
                                                             : pattern;
            flp_cut_at_32k = bench::reduction(
                best_competing, row.entry(sim::names::flp));
            vlp_cut_at_32k = bench::reduction(
                best_competing, row.entry(sim::names::vlp));
        }
    }
    table.print(std::cout);
    std::cout << "\nat 32K bytes, reduction vs best competing "
                 "predictor: FLP "
              << bench::rate(flp_cut_at_32k) << "% (paper 29%), VLP "
              << bench::rate(vlp_cut_at_32k) << "% (paper 51%)\n";
    return 0;
}
