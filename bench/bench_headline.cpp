/**
 * @file
 * Regenerates the abstract's headline numbers:
 *  - gcc conditional branches, 4K byte budget: VLP 4.3% vs gshare 8.8%
 *  - gcc indirect branches, 512 byte budget: VLP 27.7% vs 44.2% for
 *    the best competing predictor.
 */

#include <sstream>

#include "bench_common.h"

#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    bench::Driver driver(
        "bench_headline",
        "Abstract headline: gcc at 4K bytes (conditional) and 512 "
        "bytes (indirect)",
        "test input");
    return driver.run(argc, argv, [](sim::ParallelRunner &runner,
                                     sim::Report &report) {
        const auto &spec = workload::findBenchmark("gcc");

        // The conditional and indirect headlines are independent
        // experiments, so they form a two-item shard; each worker
        // renders its block to a string and the blocks print in
        // fixed order.
        const auto blocks = runner.map<std::string>(
            2, [&](sim::ExperimentContext &context, std::size_t i) {
                std::ostringstream out;
                if (i == 0) {
                    const unsigned global_length =
                        context.globalConditionalLength(4096);
                    const auto row = sim::compareConditional(
                        context, spec, 4096, global_length);
                    for (const auto &entry : row.entries)
                        runner.addPredictions(entry.branches);
                    out << "\nconditional, 4K bytes:\n"
                        << "  gshare:               "
                        << bench::rate(
                               row.entry(sim::names::gshare).rate)
                        << "%   (paper: 8.8%)\n"
                        << "  variable length path: "
                        << bench::rate(
                               row.entry(sim::names::vlp).rate)
                        << "%   (paper: 4.3%)\n";
                } else {
                    const unsigned global_length =
                        context.globalIndirectLength(512);
                    const auto row = sim::compareIndirect(
                        context, spec, 512, global_length);
                    for (const auto &entry : row.entries)
                        runner.addPredictions(entry.branches);
                    const auto &path =
                        row.entry(sim::names::chpPath);
                    const auto &pattern =
                        row.entry(sim::names::chpPattern);
                    const auto &best =
                        path.mispredictions < pattern.mispredictions
                            ? path
                            : pattern;
                    out << "\nindirect, 512 bytes:\n"
                        << "  best competing (" << best.predictor
                        << "): " << bench::rate(best.rate)
                        << "%   (paper: 44.2%)\n"
                        << "  variable length path: "
                        << bench::rate(
                               row.entry(sim::names::vlp).rate)
                        << "%   (paper: 27.7%)\n";
                }
                return out.str();
            });

        report.addText("conditional", blocks[0]);
        report.addText("indirect", blocks[1]);
    });
}
