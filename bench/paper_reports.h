/**
 * @file
 * Report builders shared between bench binaries and the golden-file
 * tests.
 *
 * bench_table2 and bench_fig5_6 are the byte-identity reference
 * binaries: tests/test_report.cpp builds the same reports through
 * these functions and asserts the ASCII sink reproduces the committed
 * pre-refactor stdout (tests/golden/) at --jobs 1 and --jobs 4.
 */

#ifndef VLPSIM_BENCH_PAPER_REPORTS_H
#define VLPSIM_BENCH_PAPER_REPORTS_H

#include "sim/parallel.h"
#include "sim/report.h"

namespace bench {

/** Banner text of bench_table2. */
inline constexpr char table2Title[] =
    "Table 2: Path Length Used for Fixed Length Predictor";
inline constexpr char table2Configuration[] =
    "profile inputs, average over all 16 benchmarks";

/** Banner text of bench_fig5_6. */
inline constexpr char fig5_6Title[] =
    "Figures 5 & 6: Conditional Misprediction Rates";
inline constexpr char fig5_6Configuration[] =
    "16K byte predictor, test inputs";

/** Fill @p report with Table 2's sections (conditional and indirect
 *  best path lengths per table size). */
void buildTable2(vlp::sim::ParallelRunner &runner,
                 vlp::sim::Report &report);

/** Fill @p report with Figures 5 & 6's sections (per-benchmark
 *  conditional rates at 16K bytes plus the reduction summary). */
void buildFig5_6(vlp::sim::ParallelRunner &runner,
                 vlp::sim::Report &report);

} // namespace bench

#endif // VLPSIM_BENCH_PAPER_REPORTS_H
