/**
 * @file
 * Related-work shootout (ours — beyond the paper's own tables):
 * positions the variable length path predictor against the rest of
 * the 1997/98 design space the paper cites.
 *
 * Conditional @ 16 KB: bimodal, GAs, gselect, gshare, agree, bi-mode,
 * DHLF-gshare, elastic gshare (profiled pattern lengths — Tarlescu et
 * al.), hybrid, FLP, VLP.
 * Indirect @ 2 KB: BTB, CHP pattern, CHP path, cascaded, dual-length
 * path hybrid (Driesen & Hölzle), FLP, VLP.
 *
 * The elastic-vs-VLP column answers the paper's implicit question: how
 * much of the win is per-branch length selection (elastic has it too)
 * and how much is *path* versus *pattern* history (only VLP has
 * paths).
 */

#include <memory>

#include "bench_common.h"

#include "core/dynamic_path.h"
#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/agree.h"
#include "predictors/bimodal.h"
#include "predictors/bimode.h"
#include "predictors/btb.h"
#include "predictors/cascaded.h"
#include "predictors/dhlf.h"
#include "predictors/dual_length.h"
#include "predictors/elastic.h"
#include "predictors/gselect.h"
#include "predictors/gshare.h"
#include "predictors/hybrid.h"
#include "predictors/budget.h"
#include "predictors/target_cache.h"
#include "predictors/two_level.h"
#include "sim/simulator.h"
#include "workload/benchmarks.h"

namespace {

using namespace vlp;

const char *const condBenchmarks[] = {"gcc", "go", "perl", "vortex"};
const char *const indBenchmarks[] = {"gcc", "perl", "li", "gs"};

/** One benchmark's column: predictor display names plus their rates. */
struct ShootoutColumn
{
    std::vector<std::string> names;
    std::vector<double> rates;
};

ShootoutColumn
conditionalColumn(vlp::sim::ExperimentContext &context,
                  vlp::sim::ParallelRunner &runner,
                  const std::string &name)
{
    constexpr std::size_t bytes = 16384;
    const unsigned k = pred::conditionalIndexBits(bytes);
    const auto &spec = workload::findBenchmark(name);
    const auto profile_trace =
        context.trace(spec, workload::InputKind::Profile);
    const auto test_trace =
        context.trace(spec, workload::InputKind::Test);

    // Profiled artifacts for the two profile-driven predictors.
    core::ProfileOptions options;
    options.indexBits = k;
    core::ConditionalProfiler vlp_profiler(options);
    profile_trace->reset();
    const core::HashAssignment assignment =
        vlp_profiler.profile(*profile_trace);
    pred::ElasticProfiler elastic_profiler(k);
    profile_trace->reset();
    const pred::PatternLengthAssignment pattern_lengths =
        elastic_profiler.profile(*profile_trace);

    pred::BimodalPredictor bimodal(k);
    pred::TwoLevelPredictor gas(pred::HistoryScope::Global, k - 2, 2);
    pred::GselectPredictor gselect(k);
    pred::GsharePredictor gshare(k);
    pred::AgreePredictor agree(k);
    pred::BiModePredictor bimode(k - 1); // 3 banks ≈ same budget
    pred::DhlfGsharePredictor dhlf(k);
    pred::ElasticGsharePredictor elastic(k, pattern_lengths);
    pred::HybridPredictor hybrid(
        std::make_unique<pred::GsharePredictor>(k - 1),
        std::make_unique<pred::BimodalPredictor>(k - 1), k - 1);
    core::PathConditionalPredictor flp(k, 5);
    core::DynamicPathConditionalPredictor dynamic_vlp(k);
    core::PathConditionalPredictor vlp(k, assignment);

    sim::Simulator simulator;
    for (pred::ConditionalPredictor *predictor :
         {static_cast<pred::ConditionalPredictor *>(&bimodal),
          static_cast<pred::ConditionalPredictor *>(&gas),
          static_cast<pred::ConditionalPredictor *>(&gselect),
          static_cast<pred::ConditionalPredictor *>(&gshare),
          static_cast<pred::ConditionalPredictor *>(&agree),
          static_cast<pred::ConditionalPredictor *>(&bimode),
          static_cast<pred::ConditionalPredictor *>(&dhlf),
          static_cast<pred::ConditionalPredictor *>(&elastic),
          static_cast<pred::ConditionalPredictor *>(&hybrid),
          static_cast<pred::ConditionalPredictor *>(&flp),
          static_cast<pred::ConditionalPredictor *>(&dynamic_vlp),
          static_cast<pred::ConditionalPredictor *>(&vlp)}) {
        simulator.addConditional(predictor);
    }
    test_trace->reset();
    simulator.run(*test_trace);

    ShootoutColumn column;
    for (const auto &result : simulator.conditionalResults()) {
        runner.addPredictions(result.branches);
        column.names.push_back(result.name == "fixed length path"
                                   ? "fixed length path (len 5)"
                                   : result.name);
        column.rates.push_back(result.rate());
    }
    return column;
}

void
conditionalShootout(vlp::sim::ParallelRunner &runner,
                    vlp::sim::Report &report)
{
    sim::Section &section = report.addSection("conditional");
    section.caption =
        "\nConditional predictors @ 16 KB (mispredict %):\n";
    section.columns = {{"predictor"}, {"gcc"}, {"go"}, {"perl"},
                       {"vortex"}};
    // One column (benchmark) per shard; every column lists the same
    // predictors in registration order.
    const auto columns = runner.map<ShootoutColumn>(
        std::size(condBenchmarks),
        [&](sim::ExperimentContext &context, std::size_t i) {
            return conditionalColumn(context, runner,
                                     condBenchmarks[i]);
        });

    for (std::size_t i = 0; i < columns.front().names.size(); ++i) {
        const std::string &name = columns.front().names[i];
        std::vector<sim::Cell> cells = {sim::Cell::text(name)};
        for (const ShootoutColumn &column : columns)
            cells.push_back(sim::Cell::percent(column.rates[i]));
        section.addRow(name, std::move(cells));
    }
}

ShootoutColumn
indirectColumn(vlp::sim::ExperimentContext &context,
               vlp::sim::ParallelRunner &runner,
               const std::string &name)
{
    constexpr std::size_t bytes = 2048;
    const unsigned k = pred::indirectIndexBits(bytes);
    const auto &spec = workload::findBenchmark(name);
    const auto profile_trace =
        context.trace(spec, workload::InputKind::Profile);
    const auto test_trace =
        context.trace(spec, workload::InputKind::Test);

    core::ProfileOptions options;
    options.indexBits = k;
    core::IndirectProfiler profiler(options);
    profile_trace->reset();
    const core::HashAssignment assignment =
        profiler.profile(*profile_trace);

    pred::BtbPredictor btb(k);
    pred::PatternTargetCache chp_pattern(k);
    pred::PathTargetCache chp_path(k);
    pred::CascadedPredictor cascaded(k - 1, k - 1);
    // Two half-size tables + selector ≈ the same budget.
    pred::DualLengthIndirectPredictor dual(k - 1);
    core::PathIndirectPredictor flp(k, 5);
    core::DynamicPathIndirectPredictor dynamic_vlp(k);
    core::PathIndirectPredictor vlp(k, assignment);

    sim::Simulator simulator;
    for (pred::IndirectPredictor *predictor :
         {static_cast<pred::IndirectPredictor *>(&btb),
          static_cast<pred::IndirectPredictor *>(&chp_pattern),
          static_cast<pred::IndirectPredictor *>(&chp_path),
          static_cast<pred::IndirectPredictor *>(&cascaded),
          static_cast<pred::IndirectPredictor *>(&dual),
          static_cast<pred::IndirectPredictor *>(&flp),
          static_cast<pred::IndirectPredictor *>(&dynamic_vlp),
          static_cast<pred::IndirectPredictor *>(&vlp)}) {
        simulator.addIndirect(predictor);
    }
    test_trace->reset();
    simulator.run(*test_trace);

    ShootoutColumn column;
    for (const auto &result : simulator.indirectResults()) {
        runner.addPredictions(result.branches);
        column.names.push_back(result.name == "fixed length path"
                                   ? "fixed length path (len 5)"
                                   : result.name);
        column.rates.push_back(result.rate());
    }
    return column;
}

void
indirectShootout(vlp::sim::ParallelRunner &runner,
                 vlp::sim::Report &report)
{
    sim::Section &section = report.addSection("indirect");
    section.caption =
        "\nIndirect predictors @ 2 KB (mispredict %):\n";
    section.columns = {{"predictor"}, {"gcc"}, {"perl"}, {"li"},
                       {"gs"}};
    const auto columns = runner.map<ShootoutColumn>(
        std::size(indBenchmarks),
        [&](sim::ExperimentContext &context, std::size_t i) {
            return indirectColumn(context, runner, indBenchmarks[i]);
        });

    for (std::size_t i = 0; i < columns.front().names.size(); ++i) {
        const std::string &name = columns.front().names[i];
        std::vector<sim::Cell> cells = {sim::Cell::text(name)};
        for (const ShootoutColumn &column : columns)
            cells.push_back(sim::Cell::percent(column.rates[i]));
        section.addRow(name, std::move(cells));
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Driver driver(
        "bench_related_work",
        "Related-work shootout (extension, not a paper table)",
        "VLP vs the cited 1997/98 design space; elastic "
        "gshare isolates per-branch length selection from "
        "path-vs-pattern history");
    return driver.run(argc, argv,
                      [](vlp::sim::ParallelRunner &runner,
                         vlp::sim::Report &report) {
                          conditionalShootout(runner, report);
                          indirectShootout(runner, report);
                      });
}
