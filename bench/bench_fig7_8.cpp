/**
 * @file
 * Regenerates Figures 7 and 8: indirect branch misprediction rates
 * with a 2K byte predictor — the Chang-Hao-Patt path and pattern
 * target caches vs fixed and variable length path — for the SPEC
 * (Fig. 7) and non-SPEC (Fig. 8) benchmarks. The paper marks the 8
 * benchmarks with the highest indirect branch frequencies in bold; we
 * mark them with '*'.
 */

#include "bench_common.h"

#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    bench::Driver driver(
        "bench_fig7_8", "Figures 7 & 8: Indirect Misprediction Rates",
        "2K byte predictor, test inputs; '*' marks the 8 "
        "indirect-heavy benchmarks of Table 3");
    return driver.run(argc, argv, [](sim::ParallelRunner &runner,
                                     sim::Report &report) {
        constexpr std::size_t bytes = 2048;
        const unsigned global_length =
            runner.globalIndirectLength(bytes);
        report.addText("global-length",
                       "global fixed path length: "
                           + std::to_string(global_length) + "\n");
        report.setMeta("globalIndirectLength",
                       std::uint64_t{global_length});

        const auto &suite = workload::benchmarkSuite();
        const auto rows =
            runner.compareIndirectSuite(suite, bytes, global_length);

        for (const bool spec_group : {true, false}) {
            sim::Section &section = report.addSection(
                spec_group ? "figure7" : "figure8");
            section.caption = spec_group ? "\nFigure 7 (SPECint95)\n"
                                         : "\nFigure 8 (non-SPEC)\n";
            section.columns = {{"Benchmark"},
                               {"path CHP (%)"},
                               {"pattern CHP (%)"},
                               {"fixed length path (%)"},
                               {"variable length path (%)"},
                               {"ind branches"}};
            for (std::size_t i = 0; i < suite.size(); ++i) {
                const auto &spec = suite[i];
                if (spec.isSpec != spec_group)
                    continue;
                const auto &row = rows[i];
                section.addRow(
                    spec.name,
                    {
                        sim::Cell::text(
                            spec.name
                            + (spec.indirectHeavy ? " *" : "")),
                        sim::Cell::percent(
                            row.entry(sim::names::chpPath).rate),
                        sim::Cell::percent(
                            row.entry(sim::names::chpPattern).rate),
                        sim::Cell::percent(
                            row.entry(sim::names::flp).rate),
                        sim::Cell::percent(
                            row.entry(sim::names::vlp).rate),
                        sim::Cell::scaled(
                            row.entry(sim::names::vlp).branches),
                    });
            }
        }
    });
}
