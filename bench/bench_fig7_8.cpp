/**
 * @file
 * Regenerates Figures 7 and 8: indirect branch misprediction rates
 * with a 2K byte predictor — the Chang-Hao-Patt path and pattern
 * target caches vs fixed and variable length path — for the SPEC
 * (Fig. 7) and non-SPEC (Fig. 8) benchmarks. The paper marks the 8
 * benchmarks with the highest indirect branch frequencies in bold; we
 * mark them with '*'.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    constexpr std::size_t bytes = 2048;
    bench::banner("Figures 7 & 8: Indirect Misprediction Rates",
                  "2K byte predictor, test inputs; '*' marks the 8 "
                  "indirect-heavy benchmarks of Table 3");

    bench::RunSummary summary;
    sim::ParallelRunner runner(bench::parseJobs(argc, argv));
    const auto cache = bench::attachCache(runner, argc, argv);
    const unsigned global_length = runner.globalIndirectLength(bytes);
    std::cout << "global fixed path length: " << global_length << "\n";

    const auto &suite = workload::benchmarkSuite();
    const auto rows =
        runner.compareIndirectSuite(suite, bytes, global_length);

    for (const bool spec_group : {true, false}) {
        util::TablePrinter table({"Benchmark", "path CHP (%)",
                                  "pattern CHP (%)",
                                  "fixed length path (%)",
                                  "variable length path (%)",
                                  "ind branches"});
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const auto &spec = suite[i];
            if (spec.isSpec != spec_group)
                continue;
            const auto &row = rows[i];
            table.addRow({
                spec.name + (spec.indirectHeavy ? " *" : ""),
                bench::rate(row.entry(sim::names::chpPath).rate),
                bench::rate(row.entry(sim::names::chpPattern).rate),
                bench::rate(row.entry(sim::names::flp).rate),
                bench::rate(row.entry(sim::names::vlp).rate),
                util::formatScaled(
                    row.entry(sim::names::vlp).branches),
            });
        }
        std::cout << (spec_group ? "\nFigure 7 (SPECint95)\n"
                                 : "\nFigure 8 (non-SPEC)\n");
        table.print(std::cout);
    }
    summary.print(runner);
    bench::reportCache(cache);
    return 0;
}
