/**
 * @file
 * Regenerates Table 2: the path length used for the fixed length path
 * predictor at each table size — the length minimizing the *average*
 * misprediction rate over all benchmarks on the profile inputs
 * (Section 5.1).
 */

#include "bench_common.h"
#include "paper_reports.h"

int
main(int argc, char **argv)
{
    bench::Driver driver("bench_table2", bench::table2Title,
                         bench::table2Configuration);
    return driver.run(argc, argv, bench::buildTable2);
}
