/**
 * @file
 * Regenerates Table 2: the path length used for the fixed length path
 * predictor at each table size — the length minimizing the *average*
 * misprediction rate over all benchmarks on the profile inputs
 * (Section 5.1).
 */

#include "bench_common.h"

#include "predictors/budget.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    bench::banner("Table 2: Path Length Used for Fixed Length "
                  "Predictor",
                  "profile inputs, average over all 16 benchmarks");

    bench::RunSummary summary;
    sim::ParallelRunner context(bench::parseJobs(argc, argv));
    const auto cache = bench::attachCache(context, argc, argv);

    {
        util::TablePrinter table(
            {"Table Size (KB)", "Path Length", "avg mispredict (%)",
             "paper length"});
        const std::size_t sizes[] = {1024, 4096, 16384, 65536, 262144};
        const unsigned paper_lengths[] = {6, 9, 14, 16, 23};
        for (unsigned i = 0; i < 5; ++i) {
            const auto average =
                context.averageConditionalSweep(sizes[i]);
            const unsigned best =
                context.globalConditionalLength(sizes[i]);
            table.addRow({
                util::formatDouble(sizes[i] / 1024.0, 0),
                std::to_string(best),
                bench::rate(average[best - 1]),
                std::to_string(paper_lengths[i]),
            });
        }
        std::cout << "\nConditional Branches\n";
        table.print(std::cout);
    }

    {
        util::TablePrinter table(
            {"Table Size (KB)", "Path Length", "avg mispredict (%)",
             "paper length"});
        const std::size_t sizes[] = {512, 2048, 8192, 32768};
        const unsigned paper_lengths[] = {11, 21, 21, 21};
        for (unsigned i = 0; i < 4; ++i) {
            const auto average = context.averageIndirectSweep(sizes[i]);
            const unsigned best = context.globalIndirectLength(sizes[i]);
            table.addRow({
                util::formatDouble(sizes[i] / 1024.0, 1),
                std::to_string(best),
                bench::rate(average[best - 1]),
                std::to_string(paper_lengths[i]),
            });
        }
        std::cout << "\nIndirect Branches\n";
        table.print(std::cout);
    }
    summary.print(context);
    bench::reportCache(cache);
    return 0;
}
