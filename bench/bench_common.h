/**
 * @file
 * Shared driver for the bench binaries that regenerate the paper's
 * tables and figures.
 *
 * Every binary is now "declare columns, fill rows": it constructs a
 * bench::Driver with its banner text and hands run() a body that
 * fills a sim::Report from a sim::ParallelRunner. The driver owns
 * everything the binaries used to copy-paste — argument parsing
 * (--jobs, the cache flags, --format, --out, --help), artifact-store
 * attachment, banner and run-summary emission, and report rendering
 * through the selected sim::ReportSink. With the default
 * `--format ascii` the stdout is byte-identical to the pre-driver
 * binaries at any --jobs value (tests/golden locks this for
 * bench_table2 and bench_fig5_6).
 */

#ifndef VLPSIM_BENCH_BENCH_COMMON_H
#define VLPSIM_BENCH_BENCH_COMMON_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include "sim/experiment.h"
#include "sim/parallel.h"
#include "sim/report.h"
#include "sim/run_options.h"
#include "util/args.h"
#include "util/stats.h"

namespace bench {

/** Format a misprediction rate like the paper ("4.3" percent). */
inline std::string
rate(double value)
{
    return vlp::util::formatDouble(value, 2);
}

/**
 * Signed percentage reduction in mispredictions of @p better relative
 * to @p base.
 *
 * Convention: positive means @p better mispredicts less than the
 * baseline; negative means a regression (better > base), reported at
 * its true magnitude rather than clamped. When the baseline itself
 * has zero mispredictions no finite percentage describes a nonzero
 * comparison, so the edge cases are explicit: 0 vs 0 is 0.0 (no
 * change), and any nonzero count against a zero baseline returns
 * -infinity (rendered "-inf" by util::formatDouble).
 */
inline double
reduction(const vlp::sim::RateEntry &base,
          const vlp::sim::RateEntry &better)
{
    if (base.mispredictions == 0) {
        if (better.mispredictions == 0)
            return 0.0;
        return -std::numeric_limits<double>::infinity();
    }
    return 100.0
        * (static_cast<double>(base.mispredictions)
           - static_cast<double>(better.mispredictions))
        / static_cast<double>(base.mispredictions);
}

/**
 * Wall-clock run summary with a branches-per-second throughput line.
 *
 * Printed to stderr so that a binary's table output on stdout stays
 * byte-identical no matter the --jobs value (bench_throughput and the
 * acceptance scripts diff stdout).
 */
class RunSummary
{
  public:
    RunSummary() : start_(std::chrono::steady_clock::now()) {}

    /** Report @p predictions dynamic predictions from @p jobs
     *  workers. */
    void print(std::uint64_t predictions, unsigned jobs) const;

    /** Convenience over a runner's built-in prediction counter. */
    void print(const vlp::sim::ParallelRunner &runner) const
    {
        print(runner.predictions(), runner.jobs());
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * The shared main() of every bench binary.
 *
 * Owns the command line (common flags plus whatever the binary adds
 * through parser() before run()), the parallel runner and its
 * artifact store, the report skeleton (banner text, scale, jobs and
 * cache metadata), and the output sink. The body callback only fills
 * sections.
 */
class Driver
{
  public:
    /**
     * @param program        binary name for usage text
     * @param title          banner headline / report title
     * @param configuration  banner configuration line
     */
    Driver(std::string program, std::string title,
           std::string configuration);

    /** The argument parser, for binaries that add extra flags. */
    vlp::util::ArgParser &parser() { return parser_; }

    /** The execution options (jobs, cache) after parsing. */
    vlp::sim::RunOptions &options() { return options_; }

    /** The output options (--format, --out) after parsing. */
    vlp::sim::OutputOptions &output() { return output_; }

    /**
     * Parse the command line, run @p body to fill the report, render
     * it, and emit the stderr run summary and cache counters.
     * @return process exit code
     */
    int run(int argc, char **argv,
            const std::function<void(vlp::sim::ParallelRunner &,
                                     vlp::sim::Report &)> &body);

  private:
    std::string title_;
    std::string configuration_;
    vlp::util::ArgParser parser_;
    vlp::sim::RunOptions options_;
    vlp::sim::OutputOptions output_;
};

} // namespace bench

#endif // VLPSIM_BENCH_BENCH_COMMON_H
