/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures.
 */

#ifndef VLPSIM_BENCH_BENCH_COMMON_H
#define VLPSIM_BENCH_BENCH_COMMON_H

#include <iostream>
#include <string>
#include <vector>

#include "predictors/budget.h"
#include "sim/experiment.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/table.h"

namespace bench {

/** Format a misprediction rate like the paper ("4.3" percent). */
inline std::string
rate(double value)
{
    return vlp::util::formatDouble(value, 2);
}

/** Banner identifying which paper artifact a binary regenerates. */
inline void
banner(const std::string &what, const std::string &configuration)
{
    std::cout << "==================================================="
                 "=========\n"
              << what << "\n"
              << configuration << "\n"
              << "(synthetic workloads; compare shapes, not absolute "
                 "values — see EXPERIMENTS.md)\n"
              << "==================================================="
                 "=========\n";
    const double scale = vlp::util::workloadScale();
    if (scale != 1.0)
        std::cout << "note: VLPSIM_SCALE=" << scale << "\n";
}

/** Percentage reduction in mispredictions of @p better vs @p base. */
inline double
reduction(const vlp::sim::RateEntry &base,
          const vlp::sim::RateEntry &better)
{
    if (base.mispredictions == 0)
        return 0.0;
    return 100.0
        * (static_cast<double>(base.mispredictions)
           - static_cast<double>(better.mispredictions))
        / static_cast<double>(base.mispredictions);
}

} // namespace bench

#endif // VLPSIM_BENCH_BENCH_COMMON_H
