/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures.
 */

#ifndef VLPSIM_BENCH_BENCH_COMMON_H
#define VLPSIM_BENCH_BENCH_COMMON_H

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "predictors/budget.h"
#include "sim/experiment.h"
#include "sim/parallel.h"
#include "store/artifact_store.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/table.h"

namespace bench {

/** Format a misprediction rate like the paper ("4.3" percent). */
inline std::string
rate(double value)
{
    return vlp::util::formatDouble(value, 2);
}

/** Banner identifying which paper artifact a binary regenerates. */
inline void
banner(const std::string &what, const std::string &configuration)
{
    std::cout << "==================================================="
                 "=========\n"
              << what << "\n"
              << configuration << "\n"
              << "(synthetic workloads; compare shapes, not absolute "
                 "values — see EXPERIMENTS.md)\n"
              << "==================================================="
                 "=========\n";
    const double scale = vlp::util::workloadScale();
    if (scale != 1.0)
        std::cout << "note: VLPSIM_SCALE=" << scale << "\n";
}

/** Percentage reduction in mispredictions of @p better vs @p base. */
inline double
reduction(const vlp::sim::RateEntry &base,
          const vlp::sim::RateEntry &better)
{
    if (base.mispredictions == 0)
        return 0.0;
    return 100.0
        * (static_cast<double>(base.mispredictions)
           - static_cast<double>(better.mispredictions))
        / static_cast<double>(base.mispredictions);
}

/**
 * Parse a `--jobs N` (or `--jobs=N`) flag from the command line.
 * Returns 0 ("one worker per hardware thread") when absent; 1
 * preserves the exact serial code path.
 */
inline unsigned
parseJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string argument = argv[i];
        std::string value;
        if (argument == "--jobs") {
            if (i + 1 >= argc) {
                std::cerr << "error: --jobs requires a worker count\n";
                std::exit(2);
            }
            value = argv[i + 1];
        } else if (argument.rfind("--jobs=", 0) == 0) {
            value = argument.substr(7);
        } else {
            continue;
        }
        char *end = nullptr;
        const unsigned long jobs = std::strtoul(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || jobs > 4096) {
            std::cerr << "error: malformed --jobs value: " << value
                      << "\n";
            std::exit(2);
        }
        return static_cast<unsigned>(jobs);
    }
    return 0;
}

/**
 * Artifact-cache configuration parsed from the command line:
 * `--cache-dir DIR` (or `--cache-dir=DIR`) enables the on-disk store,
 * `--cache-max-bytes N` bounds it (LRU eviction; 0 = unbounded), and
 * `--no-cache` disables it even if VLPSIM_CACHE_DIR is set in the
 * environment.
 */
struct CacheConfig
{
    std::string directory;
    std::uint64_t maxBytes = 0;
    bool disabled = false;

    bool enabled() const { return !disabled && !directory.empty(); }
};

/** Parse a flag's value at argv[i], advancing @p i for the
 *  space-separated form. Exits with a usage error when missing. */
inline std::string
flagValue(int argc, char **argv, int &i, const std::string &flag)
{
    const std::string argument = argv[i];
    if (argument.size() > flag.size())
        return argument.substr(flag.size() + 1); // "--flag=value"
    if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " requires a value\n";
        std::exit(2);
    }
    return argv[++i];
}

/**
 * Parse the cache flags from the command line. VLPSIM_CACHE_DIR in the
 * environment supplies the directory when no --cache-dir flag is
 * given, so whole suites can be cached without editing every command.
 */
inline CacheConfig
parseCacheConfig(int argc, char **argv)
{
    CacheConfig config;
    if (const char *env = std::getenv("VLPSIM_CACHE_DIR"))
        config.directory = env;
    for (int i = 1; i < argc; ++i) {
        const std::string argument = argv[i];
        if (argument == "--no-cache") {
            config.disabled = true;
        } else if (argument == "--cache-dir"
                   || argument.rfind("--cache-dir=", 0) == 0) {
            config.directory =
                flagValue(argc, argv, i, "--cache-dir");
        } else if (argument == "--cache-max-bytes"
                   || argument.rfind("--cache-max-bytes=", 0) == 0) {
            const std::string value =
                flagValue(argc, argv, i, "--cache-max-bytes");
            char *end = nullptr;
            config.maxBytes = std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0') {
                std::cerr << "error: malformed --cache-max-bytes "
                             "value: "
                          << value << "\n";
                std::exit(2);
            }
        }
    }
    return config;
}

/**
 * Open the configured artifact store (if any) and attach it to every
 * worker context of @p runner. Returns the store so the caller can
 * keep it alive and report counters; null when caching is off.
 */
inline std::shared_ptr<vlp::store::ArtifactStore>
attachCache(vlp::sim::ParallelRunner &runner, const CacheConfig &config)
{
    if (!config.enabled())
        return nullptr;
    vlp::store::StoreOptions options;
    options.directory = config.directory;
    options.maxBytes = config.maxBytes;
    auto store = std::make_shared<vlp::store::ArtifactStore>(options);
    runner.setStore(store);
    return store;
}

/** Convenience: parse flags and attach in one call. */
inline std::shared_ptr<vlp::store::ArtifactStore>
attachCache(vlp::sim::ParallelRunner &runner, int argc, char **argv)
{
    return attachCache(runner, parseCacheConfig(argc, argv));
}

/**
 * One-line cache activity report on stderr (stdout stays
 * byte-identical between cold and warm runs). No-op for null stores.
 */
inline void
reportCache(const std::shared_ptr<vlp::store::ArtifactStore> &store)
{
    if (!store)
        return;
    const vlp::store::StoreCounters counters = store->counters();
    std::cerr << "cache: " << counters.hits << " hits, "
              << counters.misses << " misses, " << counters.inserts
              << " inserts";
    if (counters.corrupt > 0)
        std::cerr << ", " << counters.corrupt << " corrupt";
    if (counters.evicted > 0)
        std::cerr << ", " << counters.evicted << " evicted";
    std::cerr << "\n";
}

/**
 * Wall-clock run summary with a branches-per-second throughput line.
 *
 * Printed to stderr so that a binary's table output on stdout stays
 * byte-identical no matter the --jobs value (bench_throughput and the
 * acceptance scripts diff stdout).
 */
class RunSummary
{
  public:
    RunSummary() : start_(std::chrono::steady_clock::now()) {}

    /** Report @p predictions dynamic predictions from @p jobs workers. */
    void
    print(std::uint64_t predictions, unsigned jobs) const
    {
        const auto elapsed = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_);
        const double seconds = elapsed.count();
        const double per_second =
            seconds > 0.0 ? static_cast<double>(predictions) / seconds
                          : 0.0;
        std::cerr << "run summary: "
                  << vlp::util::formatCount(predictions)
                  << " branch predictions in "
                  << vlp::util::formatDouble(seconds, 2) << " s ("
                  << vlp::util::formatScaled(
                         static_cast<std::uint64_t>(per_second))
                  << " branches/s; jobs=" << jobs << ")\n";
    }

    /** Convenience over a runner's built-in prediction counter. */
    void
    print(const vlp::sim::ParallelRunner &runner) const
    {
        print(runner.predictions(), runner.jobs());
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace bench

#endif // VLPSIM_BENCH_BENCH_COMMON_H
