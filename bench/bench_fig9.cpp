/**
 * @file
 * Regenerates Figure 9: conditional branch misprediction rates for gcc
 * over a range of predictor sizes (1K to 256K bytes) — gshare, fixed
 * length path, fixed length path (tuned), and variable length path.
 * The global fixed length at each size is derived from profile-input
 * sweeps over the whole suite, exactly as in the paper's methodology.
 */

#include "bench_common.h"

#include "predictors/budget.h"
#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    bench::Driver driver(
        "bench_fig9",
        "Figure 9: Conditional Misprediction Rates for Gcc",
        "predictor sizes 1K to 256K bytes, test input");
    return driver.run(argc, argv, [](sim::ParallelRunner &runner,
                                     sim::Report &report) {
        const auto &spec = workload::findBenchmark("gcc");

        sim::Section &section = report.addSection("sizes");
        section.columns = {{"Size (KB)"},
                           {"gshare (%)"},
                           {"fixed length path (%)"},
                           {"fixed length path (tuned) (%)"},
                           {"variable length path (%)"},
                           {"global len"},
                           {"tuned len"}};

        // Each table size is an independent full-suite sweep plus a
        // gcc comparison, so the shard unit here is the size, not
        // the benchmark; rows come back in size order.
        const std::vector<std::size_t> sizes = {1024, 4096, 16384,
                                                65536, 262144};
        const auto rows = runner.map<std::vector<sim::Cell>>(
            sizes.size(),
            [&](sim::ExperimentContext &context, std::size_t i) {
                const std::size_t bytes = sizes[i];
                const unsigned global_length =
                    context.globalConditionalLength(bytes);
                const unsigned tuned_length =
                    context
                        .conditionalSweep(
                            spec, pred::conditionalIndexBits(bytes))
                        .bestLength();
                const auto row = sim::compareConditional(
                    context, spec, bytes, global_length, true);
                for (const auto &entry : row.entries)
                    runner.addPredictions(entry.branches);
                return std::vector<sim::Cell>{
                    sim::Cell::real(bytes / 1024.0, 0),
                    sim::Cell::percent(
                        row.entry(sim::names::gshare).rate),
                    sim::Cell::percent(
                        row.entry(sim::names::flp).rate),
                    sim::Cell::percent(
                        row.entry(sim::names::flpTuned).rate),
                    sim::Cell::percent(
                        row.entry(sim::names::vlp).rate),
                    sim::Cell::count(global_length),
                    sim::Cell::count(tuned_length),
                };
            });
        for (std::size_t i = 0; i < sizes.size(); ++i)
            section.addRow(std::to_string(sizes[i]),
                           std::vector<sim::Cell>(rows[i]));
        section.footer =
            "\npaper series (approx.): gshare 13/8.8/7.5/6.5/6, "
            "VLP 6.5/4.3/3.6/3.2/3 — the paper's gcc headline is "
            "VLP 4.3% vs gshare 8.8% at 4K bytes\n";
    });
}
