/**
 * @file
 * Regenerates Table 3: indirect branch misprediction rates on the 8
 * benchmarks with frequent indirect branches, with a 2K byte
 * predictor, including the paper's reported values for comparison.
 */

#include <algorithm>
#include <array>
#include <map>

#include "bench_common.h"

#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    bench::Driver driver(
        "bench_table3",
        "Table 3: Indirect Misprediction Rates on Selected "
        "Benchmarks",
        "2K byte predictor, test inputs");
    return driver.run(argc, argv, [](sim::ParallelRunner &runner,
                                     sim::Report &report) {
        constexpr std::size_t bytes = 2048;

        // Paper values: path, pattern, FLP, VLP.
        const std::map<std::string, std::array<double, 4>> paper = {
            {"m88ksim", {58.24, 41.31, 13.79, 15.96}},
            {"gcc", {50.42, 32.75, 27.64, 19.12}},
            {"li", {65.44, 27.88, 13.52, 10.36}},
            {"perl", {4.56, 9.54, 0.80, 0.49}},
            {"groff", {83.97, 25.00, 28.36, 14.10}},
            {"gs", {37.31, 18.12, 19.13, 13.68}},
            {"plot", {51.19, 11.00, 5.04, 4.06}},
            {"python", {42.87, 50.42, 34.75, 29.09}},
        };

        const unsigned global_length =
            runner.globalIndirectLength(bytes);

        std::vector<workload::BenchmarkSpec> specs;
        for (const auto &name : workload::indirectHeavyNames())
            specs.push_back(workload::findBenchmark(name));
        const auto rows =
            runner.compareIndirectSuite(specs, bytes, global_length);

        sim::Section &section = report.addSection("indirect-heavy");
        section.columns = {{"Benchmark"},     {"path (%)"},
                           {"pattern (%)"},   {"FLP (%)"},
                           {"VLP (%)"},       {"paper path"},
                           {"paper pattern"}, {"paper FLP"},
                           {"paper VLP"}};

        double reduction_vs_pattern_min = 1e9;
        double reduction_vs_pattern_max = 0;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const std::string &name = specs[i].name;
            const auto &row = rows[i];
            const auto &published = paper.at(name);
            const auto &pattern = row.entry(sim::names::chpPattern);
            const auto &vlp = row.entry(sim::names::vlp);
            section.addRow(
                name,
                {
                    sim::Cell::text(name),
                    sim::Cell::percent(
                        row.entry(sim::names::chpPath).rate),
                    sim::Cell::percent(pattern.rate),
                    sim::Cell::percent(
                        row.entry(sim::names::flp).rate),
                    sim::Cell::percent(vlp.rate),
                    sim::Cell::percent(published[0]),
                    sim::Cell::percent(published[1]),
                    sim::Cell::percent(published[2]),
                    sim::Cell::percent(published[3]),
                });
            const double cut = bench::reduction(pattern, vlp);
            reduction_vs_pattern_min =
                std::min(reduction_vs_pattern_min, cut);
            reduction_vs_pattern_max =
                std::max(reduction_vs_pattern_max, cut);
        }
        section.footer =
            "\nVLP reduction vs the pattern-based target cache: "
            + bench::rate(reduction_vs_pattern_min) + "% to "
            + bench::rate(reduction_vs_pattern_max)
            + "%  (paper: 24.5% to 94.9%)\n";
    });
}
