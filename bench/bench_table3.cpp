/**
 * @file
 * Regenerates Table 3: indirect branch misprediction rates on the 8
 * benchmarks with frequent indirect branches, with a 2K byte
 * predictor, including the paper's reported values for comparison.
 */

#include <map>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    constexpr std::size_t bytes = 2048;
    bench::banner("Table 3: Indirect Misprediction Rates on Selected "
                  "Benchmarks",
                  "2K byte predictor, test inputs");

    // Paper values: path, pattern, FLP, VLP.
    const std::map<std::string, std::array<double, 4>> paper = {
        {"m88ksim", {58.24, 41.31, 13.79, 15.96}},
        {"gcc", {50.42, 32.75, 27.64, 19.12}},
        {"li", {65.44, 27.88, 13.52, 10.36}},
        {"perl", {4.56, 9.54, 0.80, 0.49}},
        {"groff", {83.97, 25.00, 28.36, 14.10}},
        {"gs", {37.31, 18.12, 19.13, 13.68}},
        {"plot", {51.19, 11.00, 5.04, 4.06}},
        {"python", {42.87, 50.42, 34.75, 29.09}},
    };

    bench::RunSummary summary;
    sim::ParallelRunner runner(bench::parseJobs(argc, argv));
    const auto cache = bench::attachCache(runner, argc, argv);
    const unsigned global_length = runner.globalIndirectLength(bytes);

    std::vector<workload::BenchmarkSpec> specs;
    for (const auto &name : workload::indirectHeavyNames())
        specs.push_back(workload::findBenchmark(name));
    const auto rows =
        runner.compareIndirectSuite(specs, bytes, global_length);

    util::TablePrinter table({"Benchmark", "path (%)", "pattern (%)",
                              "FLP (%)", "VLP (%)", "paper path",
                              "paper pattern", "paper FLP",
                              "paper VLP"});

    double reduction_vs_pattern_min = 1e9, reduction_vs_pattern_max = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string &name = specs[i].name;
        const auto &row = rows[i];
        const auto &published = paper.at(name);
        const auto &pattern = row.entry(sim::names::chpPattern);
        const auto &vlp = row.entry(sim::names::vlp);
        table.addRow({
            name,
            bench::rate(row.entry(sim::names::chpPath).rate),
            bench::rate(pattern.rate),
            bench::rate(row.entry(sim::names::flp).rate),
            bench::rate(vlp.rate),
            bench::rate(published[0]),
            bench::rate(published[1]),
            bench::rate(published[2]),
            bench::rate(published[3]),
        });
        const double cut = bench::reduction(pattern, vlp);
        reduction_vs_pattern_min =
            std::min(reduction_vs_pattern_min, cut);
        reduction_vs_pattern_max =
            std::max(reduction_vs_pattern_max, cut);
    }
    table.print(std::cout);
    std::cout << "\nVLP reduction vs the pattern-based target cache: "
              << bench::rate(reduction_vs_pattern_min) << "% to "
              << bench::rate(reduction_vs_pattern_max)
              << "%  (paper: 24.5% to 94.9%)\n";
    summary.print(runner);
    bench::reportCache(cache);
    return 0;
}
