/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * predictor lookup/update, the incremental path-index bank, trace
 * generation, and one full profiling step. These quantify simulation
 * throughput, not prediction accuracy.
 */

#include <benchmark/benchmark.h>

#include "core/path_history.h"
#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/gshare.h"
#include "predictors/target_cache.h"
#include "util/rng.h"
#include "workload/benchmarks.h"

namespace {

using namespace vlp;

trace::VectorTraceSource &
sharedTrace()
{
    static trace::VectorTraceSource trace = workload::generateTrace(
        workload::findBenchmark("li"), workload::InputKind::Test, 0.1);
    return trace;
}

void
BM_GsharePredictUpdate(benchmark::State &state)
{
    pred::GsharePredictor gshare(14);
    auto &trace = sharedTrace();
    const auto &records = trace.records();
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &record = records[i];
        if (record.isConditional()) {
            benchmark::DoNotOptimize(gshare.predict(record));
            gshare.update(record);
        }
        gshare.observe(record);
        i = (i + 1) % records.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GsharePredictUpdate);

void
BM_VlpPredictUpdate(benchmark::State &state)
{
    core::HashAssignment assignment(8);
    core::PathConditionalPredictor vlp(14, assignment);
    auto &trace = sharedTrace();
    const auto &records = trace.records();
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &record = records[i];
        if (record.isConditional()) {
            benchmark::DoNotOptimize(vlp.predict(record));
            vlp.update(record);
        }
        vlp.observe(record);
        i = (i + 1) % records.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlpPredictUpdate);

void
BM_TargetCachePredictUpdate(benchmark::State &state)
{
    pred::PatternTargetCache cache(9);
    auto &trace = sharedTrace();
    const auto &records = trace.records();
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &record = records[i];
        if (record.isIndirect()) {
            benchmark::DoNotOptimize(cache.predict(record));
            cache.update(record);
        }
        cache.observe(record);
        i = (i + 1) % records.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TargetCachePredictUpdate);

void
BM_PathIndexBankInsert(benchmark::State &state)
{
    core::PathHistoryOptions options;
    options.depth = static_cast<unsigned>(state.range(0));
    core::PathIndexBank bank(14, options);
    util::Rng rng(7);
    for (auto _ : state)
        bank.insert(rng.next() & 0xffffff);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathIndexBankInsert)->Arg(8)->Arg(16)->Arg(32);

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &spec = workload::findBenchmark("compress");
    for (auto _ : state) {
        auto trace =
            workload::generateTrace(spec, workload::InputKind::Test,
                                    0.02);
        benchmark::DoNotOptimize(trace.size());
        state.SetItemsProcessed(state.items_processed()
                                + static_cast<std::int64_t>(
                                    trace.size()));
    }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void
BM_ProfilerStep1(benchmark::State &state)
{
    auto trace = workload::generateTrace(
        workload::findBenchmark("compress"),
        workload::InputKind::Profile, 0.05);
    core::ProfileOptions options;
    options.indexBits = 14;
    for (auto _ : state) {
        core::ConditionalProfiler profiler(options);
        trace.reset();
        benchmark::DoNotOptimize(profiler.runStep1(trace).branches);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerStep1)->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
