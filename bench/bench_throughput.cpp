/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * predictor lookup/update, the incremental path-index bank, trace
 * generation, and one full profiling step. These quantify simulation
 * throughput, not prediction accuracy.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iterator>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/path_history.h"
#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/gshare.h"
#include "predictors/target_cache.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "store/artifact_store.h"
#include "util/bits.h"
#include "util/rng.h"
#include "util/saturating_counter.h"
#include "workload/benchmarks.h"

namespace {

using namespace vlp;

/** Artifact store shared by BM_ParallelSimulate runners (may be null). */
std::shared_ptr<store::ArtifactStore> &
throughputStore()
{
    static std::shared_ptr<store::ArtifactStore> store;
    return store;
}

trace::VectorTraceSource &
sharedTrace()
{
    static trace::VectorTraceSource trace = workload::generateTrace(
        workload::findBenchmark("li"), workload::InputKind::Test, 0.1);
    return trace;
}

void
BM_GsharePredictUpdate(benchmark::State &state)
{
    pred::GsharePredictor gshare(14);
    auto &trace = sharedTrace();
    const auto &records = trace.records();
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &record = records[i];
        if (record.isConditional()) {
            benchmark::DoNotOptimize(gshare.predict(record));
            gshare.update(record);
        }
        gshare.observe(record);
        i = (i + 1) % records.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GsharePredictUpdate);

void
BM_VlpPredictUpdate(benchmark::State &state)
{
    core::HashAssignment assignment(8);
    core::PathConditionalPredictor vlp(14, assignment);
    auto &trace = sharedTrace();
    const auto &records = trace.records();
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &record = records[i];
        if (record.isConditional()) {
            benchmark::DoNotOptimize(vlp.predict(record));
            vlp.update(record);
        }
        vlp.observe(record);
        i = (i + 1) % records.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlpPredictUpdate);

void
BM_TargetCachePredictUpdate(benchmark::State &state)
{
    pred::PatternTargetCache cache(9);
    auto &trace = sharedTrace();
    const auto &records = trace.records();
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &record = records[i];
        if (record.isIndirect()) {
            benchmark::DoNotOptimize(cache.predict(record));
            cache.update(record);
        }
        cache.observe(record);
        i = (i + 1) % records.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TargetCachePredictUpdate);

void
BM_PathIndexBankInsert(benchmark::State &state)
{
    core::PathHistoryOptions options;
    options.depth = static_cast<unsigned>(state.range(0));
    core::PathIndexBank bank(14, options);
    util::Rng rng(7);
    for (auto _ : state)
        bank.insert(rng.next() & 0xffffff);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathIndexBankInsert)->Arg(8)->Arg(16)->Arg(32);

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &spec = workload::findBenchmark("compress");
    for (auto _ : state) {
        auto trace =
            workload::generateTrace(spec, workload::InputKind::Test,
                                    0.02);
        benchmark::DoNotOptimize(trace.size());
        state.SetItemsProcessed(state.items_processed()
                                + static_cast<std::int64_t>(
                                    trace.size()));
    }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void
BM_ProfilerStep1(benchmark::State &state)
{
    auto trace = workload::generateTrace(
        workload::findBenchmark("compress"),
        workload::InputKind::Profile, 0.05);
    core::ProfileOptions options;
    options.indexBits = 14;
    for (auto _ : state) {
        core::ConditionalProfiler profiler(options);
        trace.reset();
        benchmark::DoNotOptimize(profiler.runStep1(trace).branches);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerStep1)->Unit(benchmark::kMillisecond);

/** Profile trace shared by the BM_Step1Conditional variants. */
trace::VectorTraceSource &
step1Trace()
{
    static trace::VectorTraceSource trace = workload::generateTrace(
        workload::findBenchmark("compress"),
        workload::InputKind::Profile, 0.05);
    return trace;
}

/**
 * The step-1 conditional profiling kernel as shipped: packed 2-bit
 * counter tables (128 KiB for the full 32-length bank at 14 index
 * bits), length-sharded across Arg(0) worker threads. Compare against
 * BM_Step1ConditionalUnpacked for the kernel speedup.
 */
void
BM_Step1Conditional(benchmark::State &state)
{
    auto &trace = step1Trace();
    core::ProfileOptions options;
    options.indexBits = 14;
    options.jobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        core::ConditionalProfiler profiler(options);
        trace.reset();
        benchmark::DoNotOptimize(profiler.runStep1(trace).branches);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Step1Conditional)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/**
 * The pre-packing index bank: one partial-sum register per length
 * updated with an O(depth) rotate loop, plus an O(depth) THB shift —
 * the maintenance cost every record used to pay before the running-sum
 * reformulation in PathIndexBank. Depth and index width are runtime
 * state, as they were in the original (separately compiled) bank, so
 * the replica keeps its codegen rather than constant-folding into
 * something the shipped code never was.
 */
struct UnpackedBank
{
    unsigned depth;
    unsigned indexBits;
    std::vector<std::uint64_t> indices;
    std::vector<std::uint64_t> thb;

    UnpackedBank(unsigned depth_, unsigned index_bits)
        : depth(depth_), indexBits(index_bits), indices(depth_, 0),
          thb(depth_, 0)
    {
    }

    void
    observe(const trace::BranchRecord &record)
    {
        if (!record.entersPathHistory(false))
            return;
        const std::uint64_t compressed =
            util::truncate(record.nextPc >> 2, indexBits);
        for (unsigned x = depth; x-- > 1;)
            indices[x] =
                util::rotl(indices[x - 1], 1, indexBits) ^ compressed;
        indices[0] = compressed;
        for (unsigned i = depth; i-- > 1;)
            thb[i] = thb[i - 1];
        thb[0] = compressed;
    }
};

/**
 * Faithful replica of the earlier serial step-1 kernel: one
 * std::vector<util::SaturatingCounter> per length (~6 MB of table
 * state at 14 index bits — far past L2), the O(depth)-per-record
 * bank maintenance above, and branchy per-length tallies. This is
 * the baseline the packed/sharded kernel's speedup is measured
 * against.
 */
void
BM_Step1ConditionalUnpacked(benchmark::State &state)
{
    auto &trace = step1Trace();
    const unsigned index_bits = 14;
    const unsigned num_lengths = core::maxPathLength;
    const std::size_t table_size = std::size_t{1} << index_bits;
    for (auto _ : state) {
        UnpackedBank bank(num_lengths, index_bits);
        std::vector<std::vector<util::SaturatingCounter>> tables(
            num_lengths,
            std::vector<util::SaturatingCounter>(
                table_size, util::SaturatingCounter(2)));
        std::vector<std::uint64_t> mispredictions(num_lengths, 0);
        std::unordered_map<std::uint64_t, core::BranchProfile>
            profiles;
        for (const auto &record : trace.records()) {
            if (record.isConditional()) {
                core::BranchProfile &profile = profiles[record.pc];
                ++profile.executions;
                for (unsigned length = 1; length <= num_lengths;
                     ++length) {
                    util::SaturatingCounter &counter =
                        tables[length - 1][static_cast<std::size_t>(
                            bank.indices[length - 1])];
                    if (counter.predictTaken() == record.taken)
                        ++profile.correct[length - 1];
                    else
                        ++mispredictions[length - 1];
                    counter.update(record.taken);
                }
            }
            bank.observe(record);
        }
        benchmark::DoNotOptimize(mispredictions.data());
        benchmark::DoNotOptimize(profiles.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Step1ConditionalUnpacked)->Unit(benchmark::kMillisecond);

/**
 * The parallel experiment engine end to end: simulate gshare over four
 * benchmarks' test traces, sharded benchmark-per-worker. Items/s is
 * branches/s, so comparing the jobs=1 and jobs=N lines tracks the
 * engine's speedup. Traces live in each worker's ExperimentContext
 * cache, so generation cost is paid once per runner, not per
 * iteration.
 */
void
BM_ParallelSimulate(benchmark::State &state)
{
    const unsigned jobs = static_cast<unsigned>(state.range(0));
    static std::map<unsigned, std::unique_ptr<sim::ParallelRunner>>
        runners;
    auto &runner = runners[jobs];
    if (!runner) {
        runner = std::make_unique<sim::ParallelRunner>(jobs);
        runner->setStore(throughputStore());
    }

    const char *const names[] = {"compress", "li", "go", "ijpeg"};
    std::uint64_t branches = 0;
    for (auto _ : state) {
        const auto counts = runner->map<std::uint64_t>(
            std::size(names),
            [&](sim::ExperimentContext &context, std::size_t i) {
                const auto &spec = workload::findBenchmark(names[i]);
                const auto trace =
                    context.trace(spec, workload::InputKind::Test);
                pred::GsharePredictor gshare(14);
                sim::Simulator simulator;
                simulator.addConditional(&gshare);
                trace->reset();
                simulator.run(*trace);
                return simulator.conditionalResults()[0].branches;
            });
        for (const std::uint64_t count : counts)
            branches += count;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(branches));
}
BENCHMARK(BM_ParallelSimulate)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

/**
 * Like BENCHMARK_MAIN(), but the vlpsim cache flags are consumed
 * before google-benchmark sees the command line (it rejects unknown
 * flags). Unrecognized `--benchmark_*=value` flags pass through via
 * the parser's extra() list.
 */
int
main(int argc, char **argv)
{
    util::ArgParser parser(
        "bench_throughput",
        "google-benchmark microbenchmarks of the simulator's hot "
        "paths (unknown --flag=value arguments are forwarded to "
        "google-benchmark)");
    sim::RunOptions options;
    options.registerCacheFlags(parser);
    parser.allowExtra();
    parser.parse(argc, argv);
    throughputStore() = options.openStore();

    std::vector<std::string> forwarded = parser.extra();
    std::vector<char *> filtered;
    filtered.push_back(argv[0]);
    for (std::string &argument : forwarded)
        filtered.push_back(argument.data());
    int filtered_argc = static_cast<int>(filtered.size());
    filtered.push_back(nullptr);

    benchmark::Initialize(&filtered_argc, filtered.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                               filtered.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
