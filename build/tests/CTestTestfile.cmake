# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bits[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_benchmarks[1]_include.cmake")
include("/root/repo/build/tests/test_predictors[1]_include.cmake")
include("/root/repo/build/tests/test_related_predictors[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic_path[1]_include.cmake")
