# Empty compiler generated dependencies file for test_dynamic_path.
# This may be replaced when dependencies are built.
