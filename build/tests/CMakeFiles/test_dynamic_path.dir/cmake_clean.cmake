file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_path.dir/test_dynamic_path.cpp.o"
  "CMakeFiles/test_dynamic_path.dir/test_dynamic_path.cpp.o.d"
  "test_dynamic_path"
  "test_dynamic_path.pdb"
  "test_dynamic_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
