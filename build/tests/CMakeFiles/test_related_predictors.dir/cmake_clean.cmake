file(REMOVE_RECURSE
  "CMakeFiles/test_related_predictors.dir/test_related_predictors.cpp.o"
  "CMakeFiles/test_related_predictors.dir/test_related_predictors.cpp.o.d"
  "test_related_predictors"
  "test_related_predictors.pdb"
  "test_related_predictors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_related_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
