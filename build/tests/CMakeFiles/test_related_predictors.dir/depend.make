# Empty dependencies file for test_related_predictors.
# This may be replaced when dependencies are built.
