file(REMOVE_RECURSE
  "CMakeFiles/vlpsim.dir/vlpsim_cli.cpp.o"
  "CMakeFiles/vlpsim.dir/vlpsim_cli.cpp.o.d"
  "vlpsim"
  "vlpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
