# Empty dependencies file for vlpsim.
# This may be replaced when dependencies are built.
