# Empty dependencies file for bench_fig5_6.
# This may be replaced when dependencies are built.
