# Empty compiler generated dependencies file for profile_guided.
# This may be replaced when dependencies are built.
