# Empty compiler generated dependencies file for indirect_interpreter.
# This may be replaced when dependencies are built.
