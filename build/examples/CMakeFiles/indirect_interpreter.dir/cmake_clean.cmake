file(REMOVE_RECURSE
  "CMakeFiles/indirect_interpreter.dir/indirect_interpreter.cpp.o"
  "CMakeFiles/indirect_interpreter.dir/indirect_interpreter.cpp.o.d"
  "indirect_interpreter"
  "indirect_interpreter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indirect_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
