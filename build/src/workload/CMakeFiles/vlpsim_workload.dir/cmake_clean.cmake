file(REMOVE_RECURSE
  "CMakeFiles/vlpsim_workload.dir/behavior.cc.o"
  "CMakeFiles/vlpsim_workload.dir/behavior.cc.o.d"
  "CMakeFiles/vlpsim_workload.dir/benchmarks.cc.o"
  "CMakeFiles/vlpsim_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/vlpsim_workload.dir/engine.cc.o"
  "CMakeFiles/vlpsim_workload.dir/engine.cc.o.d"
  "CMakeFiles/vlpsim_workload.dir/generator.cc.o"
  "CMakeFiles/vlpsim_workload.dir/generator.cc.o.d"
  "CMakeFiles/vlpsim_workload.dir/program.cc.o"
  "CMakeFiles/vlpsim_workload.dir/program.cc.o.d"
  "libvlpsim_workload.a"
  "libvlpsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlpsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
