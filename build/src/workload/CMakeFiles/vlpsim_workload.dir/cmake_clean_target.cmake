file(REMOVE_RECURSE
  "libvlpsim_workload.a"
)
