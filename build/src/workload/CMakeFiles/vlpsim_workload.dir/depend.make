# Empty dependencies file for vlpsim_workload.
# This may be replaced when dependencies are built.
