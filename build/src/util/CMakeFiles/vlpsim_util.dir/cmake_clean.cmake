file(REMOVE_RECURSE
  "CMakeFiles/vlpsim_util.dir/logging.cc.o"
  "CMakeFiles/vlpsim_util.dir/logging.cc.o.d"
  "CMakeFiles/vlpsim_util.dir/rng.cc.o"
  "CMakeFiles/vlpsim_util.dir/rng.cc.o.d"
  "CMakeFiles/vlpsim_util.dir/stats.cc.o"
  "CMakeFiles/vlpsim_util.dir/stats.cc.o.d"
  "CMakeFiles/vlpsim_util.dir/table.cc.o"
  "CMakeFiles/vlpsim_util.dir/table.cc.o.d"
  "libvlpsim_util.a"
  "libvlpsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlpsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
