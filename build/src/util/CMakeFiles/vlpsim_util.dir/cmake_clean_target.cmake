file(REMOVE_RECURSE
  "libvlpsim_util.a"
)
