# Empty compiler generated dependencies file for vlpsim_util.
# This may be replaced when dependencies are built.
