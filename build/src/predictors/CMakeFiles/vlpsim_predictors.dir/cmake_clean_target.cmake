file(REMOVE_RECURSE
  "libvlpsim_predictors.a"
)
