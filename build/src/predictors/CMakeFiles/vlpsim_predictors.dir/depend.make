# Empty dependencies file for vlpsim_predictors.
# This may be replaced when dependencies are built.
