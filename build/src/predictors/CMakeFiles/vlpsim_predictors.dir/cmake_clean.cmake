file(REMOVE_RECURSE
  "CMakeFiles/vlpsim_predictors.dir/agree.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/agree.cc.o.d"
  "CMakeFiles/vlpsim_predictors.dir/bimodal.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/bimodal.cc.o.d"
  "CMakeFiles/vlpsim_predictors.dir/bimode.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/bimode.cc.o.d"
  "CMakeFiles/vlpsim_predictors.dir/btb.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/btb.cc.o.d"
  "CMakeFiles/vlpsim_predictors.dir/cascaded.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/cascaded.cc.o.d"
  "CMakeFiles/vlpsim_predictors.dir/dhlf.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/dhlf.cc.o.d"
  "CMakeFiles/vlpsim_predictors.dir/dual_length.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/dual_length.cc.o.d"
  "CMakeFiles/vlpsim_predictors.dir/elastic.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/elastic.cc.o.d"
  "CMakeFiles/vlpsim_predictors.dir/gselect.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/gselect.cc.o.d"
  "CMakeFiles/vlpsim_predictors.dir/gshare.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/gshare.cc.o.d"
  "CMakeFiles/vlpsim_predictors.dir/hybrid.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/hybrid.cc.o.d"
  "CMakeFiles/vlpsim_predictors.dir/ras.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/ras.cc.o.d"
  "CMakeFiles/vlpsim_predictors.dir/target_cache.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/target_cache.cc.o.d"
  "CMakeFiles/vlpsim_predictors.dir/two_level.cc.o"
  "CMakeFiles/vlpsim_predictors.dir/two_level.cc.o.d"
  "libvlpsim_predictors.a"
  "libvlpsim_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlpsim_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
