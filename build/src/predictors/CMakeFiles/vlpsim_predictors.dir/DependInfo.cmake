
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictors/agree.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/agree.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/agree.cc.o.d"
  "/root/repo/src/predictors/bimodal.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/bimodal.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/bimodal.cc.o.d"
  "/root/repo/src/predictors/bimode.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/bimode.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/bimode.cc.o.d"
  "/root/repo/src/predictors/btb.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/btb.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/btb.cc.o.d"
  "/root/repo/src/predictors/cascaded.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/cascaded.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/cascaded.cc.o.d"
  "/root/repo/src/predictors/dhlf.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/dhlf.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/dhlf.cc.o.d"
  "/root/repo/src/predictors/dual_length.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/dual_length.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/dual_length.cc.o.d"
  "/root/repo/src/predictors/elastic.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/elastic.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/elastic.cc.o.d"
  "/root/repo/src/predictors/gselect.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/gselect.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/gselect.cc.o.d"
  "/root/repo/src/predictors/gshare.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/gshare.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/gshare.cc.o.d"
  "/root/repo/src/predictors/hybrid.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/hybrid.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/hybrid.cc.o.d"
  "/root/repo/src/predictors/ras.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/ras.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/ras.cc.o.d"
  "/root/repo/src/predictors/target_cache.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/target_cache.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/target_cache.cc.o.d"
  "/root/repo/src/predictors/two_level.cc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/two_level.cc.o" "gcc" "src/predictors/CMakeFiles/vlpsim_predictors.dir/two_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/vlpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vlpsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
