# Empty compiler generated dependencies file for vlpsim_trace.
# This may be replaced when dependencies are built.
