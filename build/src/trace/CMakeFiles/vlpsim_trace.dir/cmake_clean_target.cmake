file(REMOVE_RECURSE
  "libvlpsim_trace.a"
)
