file(REMOVE_RECURSE
  "CMakeFiles/vlpsim_trace.dir/branch_record.cc.o"
  "CMakeFiles/vlpsim_trace.dir/branch_record.cc.o.d"
  "CMakeFiles/vlpsim_trace.dir/text_io.cc.o"
  "CMakeFiles/vlpsim_trace.dir/text_io.cc.o.d"
  "CMakeFiles/vlpsim_trace.dir/trace_filter.cc.o"
  "CMakeFiles/vlpsim_trace.dir/trace_filter.cc.o.d"
  "CMakeFiles/vlpsim_trace.dir/trace_io.cc.o"
  "CMakeFiles/vlpsim_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/vlpsim_trace.dir/trace_stats.cc.o"
  "CMakeFiles/vlpsim_trace.dir/trace_stats.cc.o.d"
  "libvlpsim_trace.a"
  "libvlpsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlpsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
