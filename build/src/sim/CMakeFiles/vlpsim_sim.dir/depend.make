# Empty dependencies file for vlpsim_sim.
# This may be replaced when dependencies are built.
