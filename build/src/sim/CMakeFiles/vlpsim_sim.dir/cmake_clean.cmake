file(REMOVE_RECURSE
  "CMakeFiles/vlpsim_sim.dir/experiment.cc.o"
  "CMakeFiles/vlpsim_sim.dir/experiment.cc.o.d"
  "CMakeFiles/vlpsim_sim.dir/simulator.cc.o"
  "CMakeFiles/vlpsim_sim.dir/simulator.cc.o.d"
  "CMakeFiles/vlpsim_sim.dir/timing.cc.o"
  "CMakeFiles/vlpsim_sim.dir/timing.cc.o.d"
  "libvlpsim_sim.a"
  "libvlpsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlpsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
