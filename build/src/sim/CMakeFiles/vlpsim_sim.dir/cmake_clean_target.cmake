file(REMOVE_RECURSE
  "libvlpsim_sim.a"
)
