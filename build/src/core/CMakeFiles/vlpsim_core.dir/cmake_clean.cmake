file(REMOVE_RECURSE
  "CMakeFiles/vlpsim_core.dir/dynamic_path.cc.o"
  "CMakeFiles/vlpsim_core.dir/dynamic_path.cc.o.d"
  "CMakeFiles/vlpsim_core.dir/hash_assignment.cc.o"
  "CMakeFiles/vlpsim_core.dir/hash_assignment.cc.o.d"
  "CMakeFiles/vlpsim_core.dir/hfnt.cc.o"
  "CMakeFiles/vlpsim_core.dir/hfnt.cc.o.d"
  "CMakeFiles/vlpsim_core.dir/path_history.cc.o"
  "CMakeFiles/vlpsim_core.dir/path_history.cc.o.d"
  "CMakeFiles/vlpsim_core.dir/path_predictor.cc.o"
  "CMakeFiles/vlpsim_core.dir/path_predictor.cc.o.d"
  "CMakeFiles/vlpsim_core.dir/profiler.cc.o"
  "CMakeFiles/vlpsim_core.dir/profiler.cc.o.d"
  "libvlpsim_core.a"
  "libvlpsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlpsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
