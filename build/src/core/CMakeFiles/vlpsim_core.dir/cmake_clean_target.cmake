file(REMOVE_RECURSE
  "libvlpsim_core.a"
)
