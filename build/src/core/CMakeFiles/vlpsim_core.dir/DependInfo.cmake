
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dynamic_path.cc" "src/core/CMakeFiles/vlpsim_core.dir/dynamic_path.cc.o" "gcc" "src/core/CMakeFiles/vlpsim_core.dir/dynamic_path.cc.o.d"
  "/root/repo/src/core/hash_assignment.cc" "src/core/CMakeFiles/vlpsim_core.dir/hash_assignment.cc.o" "gcc" "src/core/CMakeFiles/vlpsim_core.dir/hash_assignment.cc.o.d"
  "/root/repo/src/core/hfnt.cc" "src/core/CMakeFiles/vlpsim_core.dir/hfnt.cc.o" "gcc" "src/core/CMakeFiles/vlpsim_core.dir/hfnt.cc.o.d"
  "/root/repo/src/core/path_history.cc" "src/core/CMakeFiles/vlpsim_core.dir/path_history.cc.o" "gcc" "src/core/CMakeFiles/vlpsim_core.dir/path_history.cc.o.d"
  "/root/repo/src/core/path_predictor.cc" "src/core/CMakeFiles/vlpsim_core.dir/path_predictor.cc.o" "gcc" "src/core/CMakeFiles/vlpsim_core.dir/path_predictor.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/vlpsim_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/vlpsim_core.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/predictors/CMakeFiles/vlpsim_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vlpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vlpsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
