# Empty compiler generated dependencies file for vlpsim_core.
# This may be replaced when dependencies are built.
