/**
 * @file
 * End-to-end integration tests: the paper's headline orderings must
 * hold on the synthetic benchmarks — the variable length path
 * predictor beats gshare on conditional branches and beats the
 * Chang-Hao-Patt target caches on indirect branches, with the fixed
 * length path predictor in between.
 */

#include <cstdlib>
#include <gtest/gtest.h>

#include "predictors/budget.h"
#include "sim/experiment.h"
#include "workload/benchmarks.h"

namespace {

using namespace vlp;
using namespace vlp::sim;

class HeadlineOrdering : public ::testing::Test
{
  protected:
    // A fifth of the default trace length keeps this test fast while
    // leaving enough dynamic branches for training plus measurement.
    void SetUp() override { setenv("VLPSIM_SCALE", "0.2", 1); }
    void TearDown() override { unsetenv("VLPSIM_SCALE"); }
};

TEST_F(HeadlineOrdering, VlpBeatsGshareOnGcc)
{
    ExperimentContext context;
    const auto &spec = workload::findBenchmark("gcc");
    const auto row = compareConditional(context, spec, 4096, 5, true);

    const double gshare = row.entry(names::gshare).rate;
    const double vlp = row.entry(names::vlp).rate;
    const double tuned = row.entry(names::flpTuned).rate;

    // The headline: VLP clearly ahead of gshare (the paper reports a
    // ~2x gap at this size).
    EXPECT_LT(vlp * 1.3, gshare);
    // Profiling the length per branch beats one tuned global length.
    EXPECT_LE(vlp, tuned * 1.05);
}

TEST_F(HeadlineOrdering, VlpBeatsTargetCachesOnIndirect)
{
    ExperimentContext context;
    for (const char *name : {"perl", "li"}) {
        const auto &spec = workload::findBenchmark(name);
        const auto row = compareIndirect(context, spec, 2048, 2, true);
        const double path = row.entry(names::chpPath).rate;
        const double pattern = row.entry(names::chpPattern).rate;
        const double vlp = row.entry(names::vlp).rate;
        EXPECT_LT(vlp * 1.2, path) << name;
        EXPECT_LT(vlp * 1.2, pattern) << name;
    }
}

TEST_F(HeadlineOrdering, TunedFixedLengthBeatsUntuned)
{
    // On a benchmark whose best length differs from the global one,
    // tuning must not hurt (it was chosen on the profile input).
    ExperimentContext context;
    const auto &spec = workload::findBenchmark("m88ksim");
    const auto row = compareIndirect(context, spec, 2048, 2, true);
    EXPECT_LE(row.entry(names::flpTuned).rate,
              row.entry(names::flp).rate * 1.1);
}

TEST_F(HeadlineOrdering, ProfilingGeneralizesAcrossInputs)
{
    // The VLP result above is measured on the *test* input with an
    // assignment profiled on the *profile* input; additionally check
    // the assignment is non-trivial (uses multiple lengths).
    ExperimentContext context;
    const auto &spec = workload::findBenchmark("li");
    const auto &assignment = context.conditionalAssignment(
        spec, pred::conditionalIndexBits(4096));
    const auto histogram = assignment.lengthHistogram();
    unsigned distinct = 0;
    for (unsigned length = 1; length <= core::maxPathLength; ++length)
        distinct += histogram.bucket(length) > 0 ? 1 : 0;
    EXPECT_GE(distinct, 4u);
}

TEST_F(HeadlineOrdering, BiggerTablesDoNotHurtVlp)
{
    ExperimentContext context;
    const auto &spec = workload::findBenchmark("compress");
    const auto small = compareConditional(context, spec, 1024, 4);
    const auto large = compareConditional(context, spec, 16384, 4);
    EXPECT_LE(large.entry(names::vlp).rate,
              small.entry(names::vlp).rate * 1.15);
}

} // anonymous namespace
