/**
 * @file
 * Tests for the serve subsystem: the request queue's admission
 * control, the wire-protocol codec, cooperative cancellation, the
 * daemon-grade logging hooks, and the ExperimentServer end to end
 * (in-process daemon + real sockets).
 *
 * The integration tests assert the PR's acceptance contract: schema-
 * valid streamed reports, warm duplicates answered from the artifact
 * store with a visible cache-hit flag, eight concurrent warm requests,
 * explicit 429 queue-overflow rejections, mid-run cancellation that
 * leaves other requests untouched, and serve reports byte-identical
 * to the CLI's JSON output. Experiment runs are pinned to
 * VLPSIM_SCALE=0.05 in main() so every cold run stays fast.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <gtest/gtest.h>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/request_queue.h"
#include "serve/server.h"
#include "sim/report.h"
#include "sim/service.h"
#include "util/cancel.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/socket.h"
#include "util/version.h"

namespace {

using namespace vlp;

/** A scratch directory removed at scope exit. */
class TempDir
{
  public:
    TempDir()
    {
        std::string pattern =
            (std::filesystem::temp_directory_path() / "vlpsim_serve_XXXXXX")
                .string();
        if (::mkdtemp(pattern.data()) == nullptr)
            throw std::runtime_error("mkdtemp failed");
        path_ = pattern;
    }

    ~TempDir()
    {
        std::error_code ignored;
        std::filesystem::remove_all(path_, ignored);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

serve::SubmitSpec
suiteSpec(unsigned jobs)
{
    serve::SubmitSpec spec;
    spec.op = "suite";
    spec.suite.indirect = false;
    spec.suite.bytes = 1024;
    spec.suite.jobs = jobs;
    return spec;
}

serve::SubmitSpec
sleepSpec(unsigned ms, int priority = 0)
{
    serve::SubmitSpec spec;
    spec.op = "sleep";
    spec.sleepMs = ms;
    spec.priority = priority;
    return spec;
}

serve::QueueItem
queueItem(std::uint64_t id, int priority = 0, std::size_t bytes = 0)
{
    serve::QueueItem item;
    item.id = id;
    item.priority = priority;
    item.bytes = bytes;
    item.work = [] {};
    return item;
}

// --- util::net::Endpoint --------------------------------------------

TEST(Endpoint, ParsesTcpHostPort)
{
    const auto endpoint = util::net::Endpoint::parse("127.0.0.1:7070");
    EXPECT_EQ(endpoint.kind, util::net::Endpoint::Kind::Tcp);
    EXPECT_EQ(endpoint.host, "127.0.0.1");
    EXPECT_EQ(endpoint.port, 7070);
    EXPECT_EQ(endpoint.describe(), "127.0.0.1:7070");
}

TEST(Endpoint, ParsesEphemeralAndBarePort)
{
    EXPECT_EQ(util::net::Endpoint::parse(":0").port, 0);
    const auto bare = util::net::Endpoint::parse("7711");
    EXPECT_EQ(bare.kind, util::net::Endpoint::Kind::Tcp);
    EXPECT_EQ(bare.port, 7711);
}

TEST(Endpoint, ParsesUnixPath)
{
    const auto endpoint = util::net::Endpoint::parse("/tmp/vlp.sock");
    EXPECT_EQ(endpoint.kind, util::net::Endpoint::Kind::Unix);
    EXPECT_EQ(endpoint.path, "/tmp/vlp.sock");
    EXPECT_EQ(endpoint.describe(), "/tmp/vlp.sock");
}

TEST(Endpoint, RejectsMalformedPort)
{
    EXPECT_THROW(util::net::Endpoint::parse("127.0.0.1:notaport"),
                 std::runtime_error);
    EXPECT_THROW(util::net::Endpoint::parse("127.0.0.1:99999"),
                 std::runtime_error);
}

TEST(LineReader, CapsRunawayUnterminatedLines)
{
    auto listener = util::net::ListenSocket::listen(
        util::net::Endpoint::parse("127.0.0.1:0"));
    const util::net::Endpoint endpoint = listener.local();
    std::thread writer([endpoint] {
        try {
            auto socket = util::net::Socket::connect(endpoint);
            const std::string blob(4096, 'x'); // never a newline
            for (int i = 0; i < 8; ++i)
                socket.sendAll(blob);
        } catch (const std::exception &) {
            // The reader may drop the connection mid-stream.
        }
    });
    auto accepted = listener.accept(-1);
    ASSERT_TRUE(accepted.has_value());
    util::net::LineReader reader(*accepted, 16 * 1024);
    std::string line;
    EXPECT_THROW(reader.readLine(line), std::runtime_error);
    writer.join();
}

TEST(ReceiveTimeout, SilentDaemonTripsTimeoutInsteadOfHanging)
{
    // Accept-but-never-speak: the connection lands in the backlog and
    // the hello never arrives. A client with a receive timeout must
    // surface TimeoutError (the CLI maps it to exit code 3) instead
    // of blocking forever.
    auto listener = util::net::ListenSocket::listen(
        util::net::Endpoint::parse("127.0.0.1:0"));
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(serve::ServeClient client(listener.local(), 100),
                 util::net::TimeoutError);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    // It waited for the timeout, not for a connect failure.
    EXPECT_GE(elapsed, std::chrono::milliseconds(50));
}

TEST(ReceiveTimeout, RawSocketReceiveThrowsTypedError)
{
    auto listener = util::net::ListenSocket::listen(
        util::net::Endpoint::parse("127.0.0.1:0"));
    auto socket = util::net::Socket::connect(listener.local());
    socket.setRecvTimeout(50);
    char buffer[16];
    try {
        socket.receive(buffer, sizeof(buffer));
        FAIL() << "receive returned with no peer data";
    } catch (const util::net::TimeoutError &) {
        // TimeoutError derives from runtime_error so existing generic
        // handlers still catch it; the CLI distinguishes it by type.
    }
}

// --- compact JSON (the wire encoding) -------------------------------

TEST(CompactJson, RoundTripsFramesByteExactly)
{
    const std::string frame =
        R"({"type":"result","id":7,"rate":4.30,"tags":["a","b"],"ok":true})";
    EXPECT_EQ(util::toCompactJson(util::Json::parse(frame)), frame);
}

// --- serve::RequestQueue --------------------------------------------

TEST(RequestQueue, RejectsWhenDepthLimitReached)
{
    serve::RequestQueue queue({/*maxDepth=*/2, /*maxInflightBytes=*/0});
    EXPECT_EQ(queue.push(queueItem(1)), serve::Admission::Accepted);
    EXPECT_EQ(queue.push(queueItem(2)), serve::Admission::Accepted);
    EXPECT_EQ(queue.push(queueItem(3)), serve::Admission::QueueFull);
    EXPECT_EQ(queue.depth(), 2u);
}

TEST(RequestQueue, ByteBudgetCoversQueuedAndRunning)
{
    serve::RequestQueue queue({/*maxDepth=*/0, /*maxInflightBytes=*/100});
    EXPECT_EQ(queue.push(queueItem(1, 0, 60)),
              serve::Admission::Accepted);
    EXPECT_EQ(queue.push(queueItem(2, 0, 60)),
              serve::Admission::BytesExhausted);

    // Popping does not release the reservation: the item is running.
    const auto running = queue.pop();
    ASSERT_TRUE(running.has_value());
    EXPECT_EQ(queue.inflightBytes(), 60u);
    EXPECT_EQ(queue.push(queueItem(3, 0, 60)),
              serve::Admission::BytesExhausted);

    // finish() releases it and the next push fits.
    queue.finish(running->bytes);
    EXPECT_EQ(queue.inflightBytes(), 0u);
    EXPECT_EQ(queue.push(queueItem(4, 0, 60)),
              serve::Admission::Accepted);
}

TEST(RequestQueue, PopsByPriorityThenFifo)
{
    serve::RequestQueue queue({});
    ASSERT_EQ(queue.push(queueItem(1, 0)), serve::Admission::Accepted);
    ASSERT_EQ(queue.push(queueItem(2, 5)), serve::Admission::Accepted);
    ASSERT_EQ(queue.push(queueItem(3, 5)), serve::Admission::Accepted);
    ASSERT_EQ(queue.push(queueItem(4, 1)), serve::Admission::Accepted);

    std::vector<std::uint64_t> order;
    for (int i = 0; i < 4; ++i) {
        const auto item = queue.pop();
        ASSERT_TRUE(item.has_value());
        order.push_back(item->id);
        queue.finish(item->bytes);
    }
    EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 3, 4, 1}));
}

TEST(RequestQueue, PositionReportsPopOrder)
{
    serve::RequestQueue queue({});
    ASSERT_EQ(queue.push(queueItem(1, 0)), serve::Admission::Accepted);
    ASSERT_EQ(queue.push(queueItem(2, 9)), serve::Admission::Accepted);
    // The high-priority late arrival jumps the line.
    EXPECT_EQ(queue.position(2), std::optional<std::size_t>(0));
    EXPECT_EQ(queue.position(1), std::optional<std::size_t>(1));
    EXPECT_EQ(queue.position(99), std::nullopt);
}

TEST(RequestQueue, RemoveOnlyCancelsStillQueuedItems)
{
    serve::RequestQueue queue({/*maxDepth=*/0, /*maxInflightBytes=*/100});
    ASSERT_EQ(queue.push(queueItem(1, 0, 40)),
              serve::Admission::Accepted);
    ASSERT_EQ(queue.push(queueItem(2, 0, 40)),
              serve::Admission::Accepted);

    const auto popped = queue.pop(); // id 1: now "running"
    ASSERT_TRUE(popped.has_value());
    EXPECT_FALSE(queue.remove(popped->id));

    EXPECT_TRUE(queue.remove(2)); // still queued: removable
    EXPECT_EQ(queue.inflightBytes(), 40u);
    EXPECT_FALSE(queue.remove(2)); // already gone
    queue.finish(popped->bytes);
}

TEST(RequestQueue, DrainRejectsNewWorkButServesQueued)
{
    serve::RequestQueue queue({});
    ASSERT_EQ(queue.push(queueItem(1)), serve::Admission::Accepted);
    queue.drain();
    EXPECT_TRUE(queue.draining());
    EXPECT_EQ(queue.push(queueItem(2)), serve::Admission::Draining);

    const auto item = queue.pop(); // admitted work still runs
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->id, 1u);
    queue.finish(item->bytes);
}

TEST(RequestQueue, CloseWakesBlockedPop)
{
    serve::RequestQueue queue({});
    std::atomic<bool> returned{false};
    std::thread worker([&] {
        EXPECT_FALSE(queue.pop().has_value());
        returned.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(returned.load());
    queue.close();
    worker.join();
    EXPECT_TRUE(returned.load());
    EXPECT_EQ(queue.push(queueItem(1)), serve::Admission::Closed);
}

TEST(RequestQueue, AwaitIdleWaitsForPoppedWorkToFinish)
{
    serve::RequestQueue queue({});
    ASSERT_EQ(queue.push(queueItem(1, 0, 8)),
              serve::Admission::Accepted);
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());

    std::atomic<bool> idle{false};
    std::thread waiter([&] {
        queue.awaitIdle();
        idle.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    // Queue is empty but the popped item has not finished: not idle.
    EXPECT_FALSE(idle.load());
    queue.finish(item->bytes);
    waiter.join();
    EXPECT_TRUE(idle.load());
}

TEST(RequestQueue, DescribesEveryAdmissionVerdict)
{
    for (const auto admission :
         {serve::Admission::Accepted, serve::Admission::QueueFull,
          serve::Admission::BytesExhausted, serve::Admission::Draining,
          serve::Admission::Closed}) {
        EXPECT_STRNE(serve::describeAdmission(admission), "");
    }
}

// --- serve protocol codec -------------------------------------------

TEST(Protocol, SubmitSuiteRoundTrips)
{
    serve::SubmitSpec spec = suiteSpec(4);
    spec.priority = -2;
    const auto parsed = serve::parseSubmit(
        util::Json::parse(serve::submitFrame(spec)));
    EXPECT_EQ(parsed.op, "suite");
    EXPECT_FALSE(parsed.suite.indirect);
    EXPECT_EQ(parsed.suite.bytes, 1024u);
    EXPECT_EQ(parsed.suite.jobs, 4u);
    EXPECT_EQ(parsed.priority, -2);
}

TEST(Protocol, SubmitSweepRoundTripsAndCostsSumOfBudgets)
{
    serve::SubmitSpec spec;
    spec.op = "sweep";
    spec.sweep.indirect = true;
    spec.sweep.budgets = {512, 1024, 4096};
    spec.sweep.jobs = 2;
    const auto parsed = serve::parseSubmit(
        util::Json::parse(serve::submitFrame(spec)));
    EXPECT_TRUE(parsed.sweep.indirect);
    EXPECT_EQ(parsed.sweep.budgets,
              (std::vector<std::size_t>{512, 1024, 4096}));
    EXPECT_EQ(parsed.cost(100), 100u + 512u + 1024u + 4096u);
}

TEST(Protocol, SubmitValidationNamesTheBadField)
{
    const auto parseText = [](const std::string &text) {
        return serve::parseSubmit(util::Json::parse(text));
    };
    EXPECT_THROW(parseText(R"({"type":"submit"})"), std::runtime_error);
    EXPECT_THROW(parseText(R"({"type":"submit","op":"bogus"})"),
                 std::runtime_error);
    EXPECT_THROW(
        parseText(R"({"type":"submit","op":"suite","bytes":0})"),
        std::runtime_error);
    EXPECT_THROW(
        parseText(R"({"type":"submit","op":"sweep","budgets":[]})"),
        std::runtime_error);
    EXPECT_THROW(
        parseText(
            R"({"type":"submit","op":"suite","priority":"high"})"),
        std::runtime_error);
    // Defaults: a bare sleep op gets a small default duration.
    EXPECT_EQ(parseText(R"({"type":"submit","op":"sleep"})").sleepMs,
              100u);
}

TEST(Protocol, AdmissionCodesAreHttpFlavored)
{
    EXPECT_EQ(serve::admissionCode(serve::Admission::Accepted), 0);
    EXPECT_EQ(serve::admissionCode(serve::Admission::QueueFull), 429);
    EXPECT_EQ(serve::admissionCode(serve::Admission::BytesExhausted),
              429);
    EXPECT_EQ(serve::admissionCode(serve::Admission::Draining), 503);
    EXPECT_EQ(serve::admissionCode(serve::Admission::Closed), 503);
}

TEST(Protocol, HelloFrameCarriesVersions)
{
    const auto hello = util::Json::parse(serve::helloFrame());
    EXPECT_EQ(hello.at("type").asString(), "hello");
    EXPECT_EQ(hello.at("service").asString(), serve::serviceName);
    EXPECT_EQ(hello.at("version").asString(), util::buildVersion());
    EXPECT_EQ(hello.at("schemaVersion").asUint(), 2u);
    EXPECT_EQ(hello.at("protocolVersion").asUint(),
              serve::protocolVersion);
}

TEST(Protocol, ServerFramesParseWithExpectedFields)
{
    const auto accepted =
        util::Json::parse(serve::acceptedFrame(7, 3));
    EXPECT_EQ(accepted.at("type").asString(), "accepted");
    EXPECT_EQ(accepted.at("id").asUint(), 7u);
    EXPECT_EQ(accepted.at("position").asUint(), 3u);

    const auto rejected =
        util::Json::parse(serve::rejectedFrame(429, "queue full"));
    EXPECT_EQ(rejected.at("type").asString(), "rejected");
    EXPECT_EQ(rejected.at("code").asUint(), 429u);

    const auto progress =
        util::Json::parse(serve::progressFrame(7, "compare", 1, 2));
    EXPECT_EQ(progress.at("type").asString(), "progress");
    EXPECT_EQ(progress.at("stage").asString(), "compare");

    const auto cancelled =
        util::Json::parse(serve::cancelledFrame(7, "queued"));
    EXPECT_EQ(cancelled.at("type").asString(), "cancelled");
    EXPECT_EQ(cancelled.at("state").asString(), "queued");

    const auto error = util::Json::parse(serve::errorFrame(0, "boom"));
    EXPECT_EQ(error.at("type").asString(), "error");
    EXPECT_EQ(error.at("id").asUint(), 0u);
}

// --- cooperative cancellation ---------------------------------------

TEST(Cancellation, TokenIsSetOnceAndThrows)
{
    util::CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_NO_THROW(token.throwIfCancelled());
    token.cancel();
    token.cancel(); // idempotent
    EXPECT_TRUE(token.cancelled());
    EXPECT_THROW(token.throwIfCancelled(), util::CancelledError);
}

TEST(Cancellation, SuiteCompareUnwindsOnCancelledToken)
{
    auto token = std::make_shared<util::CancelToken>();
    token->cancel();
    sim::SuiteCompareSpec spec;
    spec.bytes = 1024;
    spec.jobs = 1;
    EXPECT_THROW(sim::runSuiteCompare(spec, nullptr, token),
                 util::CancelledError);
}

// --- logging hooks ---------------------------------------------------

TEST(Logging, SinkCapturesAndLevelFilters)
{
    std::vector<std::string> lines;
    util::setLogSink(
        [&lines](const std::string &line) { lines.push_back(line); });
    util::setLogLevel(util::LogLevel::Warn);

    util::inform("dropped below threshold");
    util::warn("kept warning");
    util::error("kept error");

    util::setLogLevel(util::LogLevel::Info);
    util::setLogSink({});

    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "warn: kept warning");
    EXPECT_EQ(lines[1], "error: kept error");
}

TEST(Logging, ParsesLevelSpellings)
{
    EXPECT_EQ(util::parseLogLevel("debug"), util::LogLevel::Debug);
    EXPECT_EQ(util::parseLogLevel("info"), util::LogLevel::Info);
    EXPECT_EQ(util::parseLogLevel("warn"), util::LogLevel::Warn);
    EXPECT_EQ(util::parseLogLevel("error"), util::LogLevel::Error);
    EXPECT_THROW(util::parseLogLevel("verbose"), std::runtime_error);
}

// --- build stamping --------------------------------------------------

TEST(Version, StampBuildInfoIsIdempotent)
{
    ASSERT_FALSE(util::buildVersion().empty());
    sim::Report report;
    sim::stampBuildInfo(report);
    sim::stampBuildInfo(report);
    ASSERT_EQ(report.metadata.size(), 1u);
    EXPECT_EQ(report.metadata[0].first, "vlpsimVersion");
    EXPECT_EQ(report.metadata[0].second, util::buildVersion());
}

// --- ExperimentServer end to end ------------------------------------

/** One in-process daemon on an ephemeral loopback port with its own
 *  artifact-store directory. */
class ServeTest : public ::testing::Test
{
  protected:
    void startServer(serve::ServerOptions options)
    {
        options.listen = util::net::Endpoint::parse("127.0.0.1:0");
        options.cacheDirectory = cacheDir_.path();
        server_ = std::make_unique<serve::ExperimentServer>(options);
        server_->start();
    }

    serve::ExperimentServer &server() { return *server_; }

    std::unique_ptr<serve::ServeClient> connect()
    {
        return std::make_unique<serve::ServeClient>(
            server_->endpoint());
    }

    /** Submit @p spec and wait for its terminal frame. */
    util::Json submitAndAwait(
        serve::ServeClient &client, const serve::SubmitSpec &spec,
        const std::function<void(const util::Json &)> &event = {})
    {
        const auto submission = client.submit(spec);
        EXPECT_TRUE(submission.accepted) << submission.reason;
        return client.await(submission.id, event);
    }

  private:
    TempDir cacheDir_;
    std::unique_ptr<serve::ExperimentServer> server_;
};

TEST_F(ServeTest, HandshakeReportsServiceAndVersions)
{
    startServer({});
    const auto client = connect();
    const util::Json &hello = client->hello();
    EXPECT_EQ(hello.at("service").asString(), "vlpsim-serve");
    EXPECT_EQ(hello.at("version").asString(), util::buildVersion());
    EXPECT_EQ(hello.at("schemaVersion").asUint(), 2u);
    EXPECT_EQ(hello.at("protocolVersion").asUint(), 1u);
}

TEST_F(ServeTest, ListensOnUnixDomainSocket)
{
    TempDir dir;
    serve::ServerOptions options;
    options.listen =
        util::net::Endpoint::parse(dir.path() + "/serve.sock");
    serve::ExperimentServer server(options);
    server.start();
    serve::ServeClient client(server.endpoint());
    EXPECT_EQ(client.hello().at("service").asString(), "vlpsim-serve");
    server.stop();
}

TEST_F(ServeTest, SuiteResultIsSchemaValidAndStreamsProgress)
{
    startServer({});
    const auto client = connect();

    std::vector<std::string> stages;
    const auto result = submitAndAwait(
        *client, suiteSpec(2), [&stages](const util::Json &frame) {
            if (frame.at("type").asString() == "progress")
                stages.push_back(frame.at("stage").asString());
        });

    ASSERT_EQ(result.at("type").asString(), "result");
    EXPECT_EQ(result.at("status").asString(), "ok");
    EXPECT_GT(result.at("predictions").asUint(), 0u);
    const auto problems =
        sim::validateReportJson(result.at("report"));
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
    // The final stage tick always lands before the result frame.
    ASSERT_FALSE(stages.empty());
    EXPECT_EQ(stages.back(), "done");
}

TEST_F(ServeTest, DuplicateRequestIsServedWarmFromTheStore)
{
    startServer({});
    const auto client = connect();

    const auto cold = submitAndAwait(*client, suiteSpec(2));
    ASSERT_EQ(cold.at("status").asString(), "ok");
    EXPECT_FALSE(cold.at("cacheHit").asBool());
    EXPECT_GT(cold.at("cacheMisses").asUint(), 0u);

    const auto warm = submitAndAwait(*client, suiteSpec(2));
    ASSERT_EQ(warm.at("status").asString(), "ok");
    EXPECT_TRUE(warm.at("cacheHit").asBool());
    EXPECT_GT(warm.at("cacheHits").asUint(), 0u);
    EXPECT_EQ(warm.at("cacheMisses").asUint(), 0u);

    // The warm answer is the same document, byte for byte.
    EXPECT_EQ(util::toCompactJson(warm.at("report")),
              util::toCompactJson(cold.at("report")));
}

TEST_F(ServeTest, EightConcurrentWarmRequestsAllSucceed)
{
    serve::ServerOptions options;
    options.workers = 4;
    startServer(options);

    // Warm the store once, then fan out.
    submitAndAwait(*connect(), suiteSpec(2));

    constexpr int kClients = 8;
    std::vector<std::thread> threads;
    std::vector<std::string> reports(kClients);
    std::atomic<int> warm{0}, valid{0};
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            serve::ServeClient client(server().endpoint());
            const auto submission = client.submit(suiteSpec(2));
            ASSERT_TRUE(submission.accepted) << submission.reason;
            const auto result = client.await(submission.id);
            ASSERT_EQ(result.at("type").asString(), "result");
            if (result.at("cacheHit").asBool())
                warm.fetch_add(1);
            if (sim::validateReportJson(result.at("report")).empty())
                valid.fetch_add(1);
            reports[i] = util::toCompactJson(result.at("report"));
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(warm.load(), kClients);
    EXPECT_EQ(valid.load(), kClients);
    for (int i = 1; i < kClients; ++i)
        EXPECT_EQ(reports[i], reports[0]) << "client " << i;

    const auto stats = server().stats();
    EXPECT_GE(stats.completed, static_cast<std::uint64_t>(kClients + 1));
    EXPECT_EQ(stats.failed, 0u);
}

TEST_F(ServeTest, QueueOverflowIsRejectedWith429)
{
    serve::ServerOptions options;
    options.workers = 1;
    options.limits.maxDepth = 1;
    startServer(options);
    const auto client = connect();

    // One running, one queued: the queue is now at capacity. Wait
    // for the worker to actually pop the first request — until then
    // it still occupies the queue slot and the second submit would
    // be the one rejected.
    const auto running = client->submit(sleepSpec(3000));
    ASSERT_TRUE(running.accepted);
    while (client->status(running.id).at("state").asString()
           == "queued")
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const auto queued = client->submit(sleepSpec(3000));
    ASSERT_TRUE(queued.accepted);

    const auto rejected = client->submit(sleepSpec(3000));
    EXPECT_FALSE(rejected.accepted);
    EXPECT_EQ(rejected.code, 429);
    EXPECT_FALSE(rejected.reason.empty());
    EXPECT_EQ(server().stats().rejected, 1u);

    // Cancel both admitted requests so teardown is prompt.
    const auto queuedAck = client->cancel(queued.id);
    EXPECT_EQ(queuedAck.at("type").asString(), "cancelled");
    EXPECT_EQ(queuedAck.at("state").asString(), "queued");
    client->cancel(running.id);
    const auto terminal = client->await(running.id);
    EXPECT_EQ(terminal.at("type").asString(), "cancelled");
    server().awaitIdle();
}

TEST_F(ServeTest, ByteBudgetOverflowIsRejectedWith429)
{
    serve::ServerOptions options;
    options.workers = 1;
    options.limits.maxInflightBytes = 2048;
    startServer(options);
    const auto client = connect();

    // suite/1024 plus its frame fits once but not twice under 2048.
    const auto first = client->submit(suiteSpec(1));
    ASSERT_TRUE(first.accepted);
    const auto second = client->submit(suiteSpec(1));
    EXPECT_FALSE(second.accepted);
    EXPECT_EQ(second.code, 429);
    client->await(first.id);
}

TEST_F(ServeTest, MidRunCancelLeavesOtherRequestsUntouched)
{
    serve::ServerOptions options;
    options.workers = 2;
    startServer(options);
    const auto client = connect();

    const auto victim = client->submit(sleepSpec(5000));
    ASSERT_TRUE(victim.accepted);
    const auto bystander = client->submit(sleepSpec(200));
    ASSERT_TRUE(bystander.accepted);

    // Let the victim actually start, then cancel it mid-run.
    while (client->status(victim.id).at("state").asString()
           == "queued")
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const auto ack = client->cancel(victim.id);
    EXPECT_EQ(ack.at("type").asString(), "status-report");
    EXPECT_EQ(ack.at("state").asString(), "cancelling");

    const auto cancelled = client->await(victim.id);
    EXPECT_EQ(cancelled.at("type").asString(), "cancelled");
    EXPECT_EQ(cancelled.at("state").asString(), "running");

    const auto survived = client->await(bystander.id);
    EXPECT_EQ(survived.at("type").asString(), "result");
    EXPECT_EQ(survived.at("status").asString(), "ok");

    EXPECT_EQ(client->status(victim.id).at("state").asString(),
              "cancelled");
    EXPECT_GE(server().stats().cancelled, 1u);
}

TEST_F(ServeTest, HeartbeatsStreamWhileARequestRuns)
{
    serve::ServerOptions options;
    options.heartbeatMs = 25;
    startServer(options);
    const auto client = connect();

    int heartbeats = 0;
    const auto result = submitAndAwait(
        *client, sleepSpec(300), [&](const util::Json &frame) {
            if (frame.at("type").asString() == "heartbeat")
                ++heartbeats;
        });
    EXPECT_EQ(result.at("type").asString(), "result");
    EXPECT_GE(heartbeats, 2);
}

TEST_F(ServeTest, DrainRejectsNewSubmitsWith503)
{
    startServer({});
    const auto client = connect();
    server().requestDrain();

    const auto rejected = client->submit(sleepSpec(50));
    EXPECT_FALSE(rejected.accepted);
    EXPECT_EQ(rejected.code, 503);

    const auto status = client->status();
    EXPECT_TRUE(status.at("draining").asBool());
}

TEST_F(ServeTest, ShutdownFrameDrainsAndStopsTheDaemon)
{
    startServer({});
    std::thread daemon([this] { server().run(); });

    const auto client = connect();
    const auto accepted = client->submit(sleepSpec(100));
    ASSERT_TRUE(accepted.accepted);
    client->shutdownServer();

    // run() drains the admitted sleep, then tears the daemon down.
    daemon.join();
    EXPECT_THROW(serve::ServeClient probe(server().endpoint()),
                 std::runtime_error);
}

TEST_F(ServeTest, MalformedFramesGetConnectionScopedErrors)
{
    startServer({});
    const auto client = connect();

    client->sendFrame("this is not json");
    auto error = client->readFrame();
    EXPECT_EQ(error.at("type").asString(), "error");
    EXPECT_EQ(error.at("id").asUint(), 0u);

    client->sendFrame(R"({"type":"submit","op":"bogus"})");
    error = client->readFrame();
    EXPECT_EQ(error.at("type").asString(), "error");

    // The connection survives both and still serves real work.
    const auto result = submitAndAwait(*client, sleepSpec(20));
    EXPECT_EQ(result.at("type").asString(), "result");
}

/** Regression: the accepted frame is sent under the connection's
 *  write mutex before the request becomes runnable, so even a
 *  request that finishes instantly can never put its terminal frame
 *  on the wire first (which would wedge a submit/await client). */
TEST_F(ServeTest, AcceptedFrameAlwaysPrecedesTerminalFrames)
{
    startServer({});
    const auto client = connect();

    for (int i = 0; i < 25; ++i) {
        client->sendFrame(serve::submitFrame(sleepSpec(0)));
        auto frame = client->readFrame();
        ASSERT_EQ(frame.at("type").asString(), "accepted")
            << "iteration " << i;
        const std::uint64_t id = frame.at("id").asUint();
        do {
            frame = client->readFrame();
            ASSERT_EQ(frame.at("id").asUint(), id);
        } while (frame.at("type").asString() != "result");
    }
}

/** Regression: terminal requests are reaped beyond the finished
 *  window, so a long-running daemon's registry stays bounded. */
TEST_F(ServeTest, TerminalRequestsAreReapedBeyondFinishedWindow)
{
    serve::ServerOptions options;
    options.finishedWindow = 2;
    startServer(options);
    const auto client = connect();

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 3; ++i) {
        const auto submission = client->submit(sleepSpec(0));
        ASSERT_TRUE(submission.accepted) << submission.reason;
        const auto result = client->await(submission.id);
        ASSERT_EQ(result.at("type").asString(), "result");
        ids.push_back(submission.id);
    }

    // The oldest terminal request fell out of the window…
    const auto reaped = client->status(ids.front());
    EXPECT_EQ(reaped.at("type").asString(), "error");
    // …while the two newest are still queryable.
    const auto kept = client->status(ids.back());
    ASSERT_EQ(kept.at("type").asString(), "status-report");
    EXPECT_EQ(kept.at("state").asString(), "done");
}

/** The acceptance contract: a serve answer renders to exactly the
 *  bytes `vlpsim suite --format json` prints, jobs 1 and 4. */
TEST_F(ServeTest, WarmReportMatchesCliJsonByteForByte)
{
    startServer({});
    const auto client = connect();

    for (const unsigned jobs : {1u, 4u}) {
        sim::SuiteCompareSpec local;
        local.bytes = 1024;
        local.jobs = jobs;
        auto expected = sim::runSuiteCompare(local);
        sim::stampBuildInfo(expected.report);
        std::ostringstream cliBytes;
        sim::JsonReportSink().write(expected.report, cliBytes);

        const auto result = submitAndAwait(*client, suiteSpec(jobs));
        ASSERT_EQ(result.at("status").asString(), "ok");
        const std::string serveBytes =
            util::toPrettyJson(result.at("report")) + "\n";
        EXPECT_EQ(serveBytes, cliBytes.str()) << "jobs " << jobs;
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // Every experiment op in this file runs the synthetic suite; pin
    // the scale before any workload generation so cold runs stay fast
    // and serve/CLI byte comparisons see identical workloads.
    setenv("VLPSIM_SCALE", "0.05", 1);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
