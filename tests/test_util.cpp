/**
 * @file
 * Unit tests for counters, history registers, RNG, statistics, tables,
 * the retry policy (exponential schedule and seeded full jitter), and
 * logging helpers.
 */

#include <cstdint>
#include <cstdlib>
#include <gtest/gtest.h>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "util/args.h"
#include "util/history_register.h"
#include "util/logging.h"
#include "util/packed_counter_table.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/saturating_counter.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace vlp::util;

TEST(SaturatingCounter, DefaultIsWeaklyNotTaken)
{
    SaturatingCounter counter(2);
    EXPECT_EQ(counter.value(), 1u);
    EXPECT_FALSE(counter.predictTaken());
}

TEST(SaturatingCounter, TakenThresholdAtMidpoint)
{
    SaturatingCounter counter(2, 2);
    EXPECT_TRUE(counter.predictTaken());
    counter.decrement();
    EXPECT_FALSE(counter.predictTaken());
}

TEST(SaturatingCounter, SaturatesHigh)
{
    SaturatingCounter counter(2, 3);
    counter.increment();
    EXPECT_EQ(counter.value(), 3u);
}

TEST(SaturatingCounter, SaturatesLow)
{
    SaturatingCounter counter(2, 0);
    counter.decrement();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(SaturatingCounter, UpdateDirection)
{
    SaturatingCounter counter(2);
    counter.update(true);
    counter.update(true);
    EXPECT_TRUE(counter.predictTaken());
    counter.update(false);
    counter.update(false);
    counter.update(false);
    EXPECT_FALSE(counter.predictTaken());
    EXPECT_EQ(counter.value(), 0u);
}

TEST(SaturatingCounter, Confidence)
{
    SaturatingCounter counter(2, 3);
    EXPECT_EQ(counter.confidence(), 1u); // strongly taken
    counter.set(2);
    EXPECT_EQ(counter.confidence(), 0u); // weakly taken
    counter.set(1);
    EXPECT_EQ(counter.confidence(), 0u); // weakly not-taken
    counter.set(0);
    EXPECT_EQ(counter.confidence(), 1u); // strongly not-taken
}

class CounterWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CounterWidths, HysteresisAcrossWidths)
{
    const unsigned bits = GetParam();
    SaturatingCounter counter(bits);
    EXPECT_EQ(counter.maxValue(), (1u << bits) - 1);
    // Drive to saturation taken.
    for (unsigned i = 0; i < (1u << bits) + 2; ++i)
        counter.update(true);
    EXPECT_EQ(counter.value(), counter.maxValue());
    EXPECT_TRUE(counter.predictTaken());
    // It takes half the range of not-taken updates to flip.
    for (unsigned i = 0; i < (1u << (bits - 1)); ++i)
        counter.update(false);
    EXPECT_FALSE(counter.predictTaken());
}

INSTANTIATE_TEST_SUITE_P(Widths, CounterWidths,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

TEST(BitHistoryRegister, ShiftsAndTruncates)
{
    BitHistoryRegister history(4);
    history.push(true);
    history.push(false);
    history.push(true);
    EXPECT_EQ(history.value(), 0b101u);
    history.push(true);
    history.push(true);
    EXPECT_EQ(history.value(), 0b0111u); // oldest bit dropped
}

TEST(BitHistoryRegister, SetAndClear)
{
    BitHistoryRegister history(8);
    history.set(0xfff);
    EXPECT_EQ(history.value(), 0xffu);
    history.clear();
    EXPECT_EQ(history.value(), 0u);
}

TEST(ChunkHistoryRegister, ShiftsChunks)
{
    ChunkHistoryRegister history(8, 2);
    EXPECT_EQ(history.depth(), 4u);
    history.push(0b01);
    history.push(0b10);
    EXPECT_EQ(history.value(), 0b0110u);
    history.push(0xff); // only low 2 bits recorded
    EXPECT_EQ(history.value(), 0b011011u);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123), c(124);
    bool all_equal = true;
    bool any_diff = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        all_equal = all_equal && (va == b.next());
        any_diff = any_diff || (va != c.next());
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
    // Bound 1 always yields 0.
    EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto value = rng.nextInRange(-3, 3);
        EXPECT_GE(value, -3);
        EXPECT_LE(value, 3);
        saw_lo = saw_lo || value == -3;
        saw_hi = saw_hi || value == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double value = rng.nextDouble();
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 1.0);
    }
}

TEST(Rng, BoolExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, BoolFrequency)
{
    Rng rng(15);
    int taken = 0;
    for (int i = 0; i < 100000; ++i)
        taken += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(taken / 100000.0, 0.3, 0.02);
}

TEST(Rng, GeometricRespectsCap)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const unsigned value = rng.nextGeometric(0.9, 5);
        EXPECT_GE(value, 1u);
        EXPECT_LE(value, 5u);
    }
}

TEST(Rng, WeightedSkipsZeroWeights)
{
    Rng rng(19);
    const std::vector<double> weights = {0.0, 1.0, 0.0};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextWeighted(weights), 1u);
}

TEST(Rng, WeightedProportions)
{
    Rng rng(21);
    const std::vector<double> weights = {1.0, 3.0};
    int hits = 0;
    for (int i = 0; i < 40000; ++i)
        hits += rng.nextWeighted(weights) == 1 ? 1 : 0;
    EXPECT_NEAR(hits / 40000.0, 0.75, 0.02);
}

TEST(Rng, ZipfSkewsTowardSmallIndices)
{
    Rng rng(23);
    std::uint64_t zero = 0, last = 0;
    for (int i = 0; i < 20000; ++i) {
        const std::size_t value = rng.nextZipf(16, 1.2);
        EXPECT_LT(value, 16u);
        zero += value == 0 ? 1 : 0;
        last += value == 15 ? 1 : 0;
    }
    EXPECT_GT(zero, last * 4);
}

TEST(Rng, SplitIndependence)
{
    Rng parent(31);
    Rng child = parent.split();
    // Parent and child streams diverge.
    bool differ = false;
    for (int i = 0; i < 10; ++i)
        differ = differ || (parent.next() != child.next());
    EXPECT_TRUE(differ);
}

TEST(Stats, Percent)
{
    EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(percent(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(percent(5, 0), 0.0);
}

TEST(Stats, Formatting)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatCount(1234567), "1,234,567");
    EXPECT_EQ(formatCount(12), "12");
    EXPECT_EQ(formatScaled(17600000), "17.6 M");
    EXPECT_EQ(formatScaled(999), "999");
    EXPECT_EQ(formatScaled(91400), "91.4 K");
}

TEST(Stats, RunningStat)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
    stat.add(2.0);
    stat.add(4.0);
    stat.add(9.0);
    EXPECT_EQ(stat.count(), 3u);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
    EXPECT_DOUBLE_EQ(stat.sum(), 15.0);
}

TEST(Stats, HistogramBasics)
{
    Histogram histogram(8);
    histogram.add(1);
    histogram.add(1);
    histogram.add(3, 5);
    histogram.add(100); // clamped into the last bucket
    EXPECT_EQ(histogram.bucket(1), 2u);
    EXPECT_EQ(histogram.bucket(3), 5u);
    EXPECT_EQ(histogram.bucket(7), 1u);
    EXPECT_EQ(histogram.total(), 8u);
    EXPECT_EQ(histogram.argMax(), 3u);
    EXPECT_EQ(histogram.toString(), "1:2 3:5 7:1");
}

TEST(Table, AlignmentAndCsv)
{
    TablePrinter table({"name", "rate"});
    table.addRow({"gcc", "4.3"});
    table.addRow({"a,b", "8.8"});
    EXPECT_EQ(table.rowCount(), 2u);
    EXPECT_EQ(table.cell(0, 1), "4.3");

    std::ostringstream text;
    table.print(text);
    EXPECT_NE(text.str().find("name"), std::string::npos);
    EXPECT_NE(text.str().find("gcc"), std::string::npos);

    std::ostringstream csv;
    table.printCsv(csv);
    EXPECT_NE(csv.str().find("\"a,b\",8.8"), std::string::npos);
}

TEST(Table, CsvEscape)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("q\"q"), "\"q\"\"q\"");
}

TEST(PackedCounterTable, DefaultIsWeaklyNotTaken)
{
    PackedCounterTable table(16, 2);
    for (std::size_t i = 0; i < table.size(); ++i) {
        EXPECT_EQ(table.value(i), 1u);
        EXPECT_FALSE(table.predictTaken(i));
    }
}

TEST(PackedCounterTable, ArchitecturalSizeIsPackedBits)
{
    // A 14-bit table of 2-bit counters is the paper's 4 KiB budget.
    EXPECT_EQ(PackedCounterTable(std::size_t{1} << 14, 2).sizeBytes(),
              4096u);
    // Odd widths round the total up to whole bytes, with no
    // slot-padding leaking into the architectural number.
    EXPECT_EQ(PackedCounterTable(10, 3).sizeBytes(), 4u);
    EXPECT_EQ(PackedCounterTable(7, 1).sizeBytes(), 1u);
}

TEST(PackedCounterTable, UpdatesOnlyTheAddressedSlot)
{
    PackedCounterTable table(64, 2);
    table.set(10, 3);
    table.update(11, true);
    table.update(9, false);
    EXPECT_EQ(table.value(10), 3u);
    EXPECT_EQ(table.value(11), 2u);
    EXPECT_EQ(table.value(9), 0u);
    EXPECT_EQ(table.value(8), 1u);
    EXPECT_EQ(table.value(12), 1u);
}

/**
 * Property test: a PackedCounterTable must be indistinguishable from
 * an array of util::SaturatingCounter at every supported width under
 * a long random mixed workload of updates, forced sets, and reads.
 */
TEST(PackedCounterTable, MatchesSaturatingCounterAtEveryWidth)
{
    Rng rng(0xc0117e5);
    for (unsigned bits = 1; bits <= 8; ++bits) {
        const std::size_t size = 61; // not a power of two on purpose
        PackedCounterTable packed(size, bits);
        std::vector<SaturatingCounter> reference(
            size, SaturatingCounter(bits));
        for (int step = 0; step < 20000; ++step) {
            const std::size_t index = rng.nextBelow(size);
            const unsigned action =
                static_cast<unsigned>(rng.nextBelow(8));
            if (action == 0) {
                const unsigned forced = static_cast<unsigned>(
                    rng.nextBelow(packed.maxValue() + 1));
                packed.set(index, forced);
                reference[index] = SaturatingCounter(
                    bits, static_cast<int>(forced));
            } else if (action == 1) {
                const bool taken = rng.nextBool(0.5);
                EXPECT_EQ(packed.predictThenUpdate(index, taken),
                          reference[index].predictTaken());
                reference[index].update(taken);
            } else {
                const bool taken = rng.nextBool(0.5);
                packed.update(index, taken);
                reference[index].update(taken);
            }
            ASSERT_EQ(packed.value(index), reference[index].value())
                << "width " << bits << " step " << step;
            ASSERT_EQ(packed.predictTaken(index),
                      reference[index].predictTaken());
            ASSERT_EQ(packed.confidence(index),
                      reference[index].confidence());
        }
    }
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("boom"), std::runtime_error);
}

TEST(Logging, WorkloadScaleParsing)
{
    setenv("VLPSIM_SCALE", "2.5", 1);
    EXPECT_DOUBLE_EQ(workloadScale(), 2.5);
    setenv("VLPSIM_SCALE", "garbage", 1);
    EXPECT_DOUBLE_EQ(workloadScale(), 1.0);
    setenv("VLPSIM_SCALE", "1e9", 1);
    EXPECT_DOUBLE_EQ(workloadScale(), 1000.0); // clamped
    unsetenv("VLPSIM_SCALE");
    EXPECT_DOUBLE_EQ(workloadScale(), 1.0);
}

/** Build an argv array from literals for ArgParser tests. */
std::vector<char *>
makeArgv(std::initializer_list<const char *> args)
{
    static std::vector<std::string> storage;
    storage.assign(args.begin(), args.end());
    std::vector<char *> argv;
    for (std::string &arg : storage)
        argv.push_back(arg.data());
    argv.push_back(nullptr);
    return argv;
}

TEST(ArgParser, ParsesFlagsInBothFormsAndPositionals)
{
    ArgParser parser("prog", "test program");
    std::uint64_t jobs = 0;
    std::string directory;
    bool off = false;
    parser.addUint("--jobs", "N", "workers", &jobs, 4096);
    parser.addString("--cache-dir", "DIR", "cache", &directory);
    parser.addSwitch("--no-cache", "disable", &off);
    parser.addPositional("class", "branch class");
    parser.addPositional("bytes", "budget");

    auto argv = makeArgv({"prog", "--jobs", "4", "cond",
                          "--cache-dir=/tmp/c", "8192", "--no-cache"});
    const auto positionals =
        parser.parse(static_cast<int>(argv.size()) - 1, argv.data());
    EXPECT_EQ(jobs, 4u);
    EXPECT_EQ(directory, "/tmp/c");
    EXPECT_TRUE(off);
    ASSERT_EQ(positionals.size(), 2u);
    EXPECT_EQ(positionals[0], "cond");
    EXPECT_EQ(positionals[1], "8192");
}

TEST(ArgParser, AllowExtraCollectsUnknownFlags)
{
    ArgParser parser("prog", "test program");
    std::uint64_t jobs = 0;
    parser.addUint("--jobs", "N", "workers", &jobs);
    parser.allowExtra();
    auto argv = makeArgv(
        {"prog", "--benchmark_filter=foo", "--jobs", "2"});
    parser.parse(static_cast<int>(argv.size()) - 1, argv.data());
    EXPECT_EQ(jobs, 2u);
    ASSERT_EQ(parser.extra().size(), 1u);
    EXPECT_EQ(parser.extra()[0], "--benchmark_filter=foo");
}

TEST(ArgParserDeathTest, HelpExitsZeroAndListsFlags)
{
    auto run = [] {
        ArgParser parser("prog", "test program");
        std::uint64_t jobs = 0;
        parser.addUint("--jobs", "N", "workers", &jobs);
        auto argv = makeArgv({"prog", "--help"});
        parser.parse(static_cast<int>(argv.size()) - 1, argv.data());
    };
    EXPECT_EXIT(run(), ::testing::ExitedWithCode(0), "");
}

TEST(ArgParserDeathTest, UnknownFlagExitsTwoWithUsageHint)
{
    auto run = [] {
        ArgParser parser("prog", "test program");
        auto argv = makeArgv({"prog", "--bogus"});
        parser.parse(static_cast<int>(argv.size()) - 1, argv.data());
    };
    EXPECT_EXIT(run(), ::testing::ExitedWithCode(2),
                "run 'prog --help' for usage");
}

TEST(ArgParserDeathTest, MalformedValueExitsTwo)
{
    auto run = [] {
        ArgParser parser("prog", "test program");
        std::uint64_t jobs = 0;
        parser.addUint("--jobs", "N", "workers", &jobs, 4096);
        auto argv = makeArgv({"prog", "--jobs", "banana"});
        parser.parse(static_cast<int>(argv.size()) - 1, argv.data());
    };
    EXPECT_EXIT(run(), ::testing::ExitedWithCode(2), "--jobs");
}

// --- retry policy ----------------------------------------------------

/** Run retryTransient with @p failures leading TransientErrors and
 *  capture the backoff schedule the sleeper observes. */
std::vector<unsigned>
backoffSchedule(RetryPolicy policy, unsigned failures)
{
    std::vector<unsigned> delays;
    policy.sleeper = [&delays](unsigned ms) { delays.push_back(ms); };
    unsigned remaining = failures;
    retryTransient(policy, [&remaining] {
        if (remaining > 0) {
            --remaining;
            throw vlp::util::TransientError("induced");
        }
        return 0;
    });
    return delays;
}

TEST(RetryPolicy, UnjitteredScheduleIsExactExponential)
{
    RetryPolicy policy;
    policy.maxAttempts = 4;
    policy.backoffBaseMs = 10;
    EXPECT_EQ(backoffSchedule(policy, 3),
              (std::vector<unsigned>{10, 20, 40}));
}

TEST(RetryPolicy, ScheduleClampsAtBackoffMax)
{
    RetryPolicy policy;
    policy.maxAttempts = 6;
    policy.backoffBaseMs = 10;
    policy.backoffMaxMs = 25;
    EXPECT_EQ(backoffSchedule(policy, 5),
              (std::vector<unsigned>{10, 20, 25, 25, 25}));
}

TEST(RetryPolicy, JitterSeedGivesRepeatableBoundedSchedule)
{
    RetryPolicy policy;
    policy.maxAttempts = 8;
    policy.backoffBaseMs = 10;
    policy.backoffMaxMs = 200;
    policy.jitterSeed = 0xfeedULL;

    const auto first = backoffSchedule(policy, 7);
    ASSERT_EQ(first.size(), 7u);
    for (std::size_t r = 0; r < first.size(); ++r) {
        const unsigned ceiling = std::min<unsigned>(
            policy.backoffMaxMs, 10u << std::min<std::size_t>(r, 31));
        EXPECT_LE(first[r], ceiling) << "retry " << r;
    }

    // The draw depends only on (seed, attempt): exact replay.
    EXPECT_EQ(backoffSchedule(policy, 7), first);

    // A different seed decorrelates the shards.
    policy.jitterSeed = 0xbeefULL;
    EXPECT_NE(backoffSchedule(policy, 7), first);

    // And jitter never changes *whether* retries happen: the budget
    // still runs out on a persistent fault.
    unsigned attempts = 0;
    policy.sleeper = [](unsigned) {};
    EXPECT_THROW(retryTransient(policy,
                                [&attempts]() -> int {
                                    ++attempts;
                                    throw vlp::util::TransientError(
                                        "persistent");
                                }),
                 vlp::util::TransientError);
    EXPECT_EQ(attempts, policy.maxAttempts);
}

TEST(ArgParserDeathTest, MissingRequiredPositionalExitsTwo)
{
    auto run = [] {
        ArgParser parser("prog", "test program");
        parser.addPositional("input", "input file");
        auto argv = makeArgv({"prog"});
        parser.parse(static_cast<int>(argv.size()) - 1, argv.data());
    };
    EXPECT_EXIT(run(), ::testing::ExitedWithCode(2), "input");
}

} // anonymous namespace
