/**
 * @file
 * Unit tests for the paper's core machinery: the THB / incremental
 * index bank, hash assignments, the FLP/VLP predictors, and the HFNT.
 */

#include <cstdio>
#include <gtest/gtest.h>
#include <tuple>

#include "core/hash_assignment.h"
#include "core/hfnt.h"
#include "core/path_history.h"
#include "core/path_predictor.h"
#include "util/bits.h"
#include "util/rng.h"

namespace {

using namespace vlp;
using namespace vlp::core;
using trace::BranchKind;
using trace::BranchRecord;

BranchRecord
record(BranchKind kind, std::uint64_t pc, std::uint64_t next,
       bool taken = true)
{
    BranchRecord result;
    result.pc = pc;
    result.nextPc = next;
    result.taken = taken;
    result.kind = kind;
    return result;
}

// --- PathIndexBank ----------------------------------------------------

TEST(PathIndexBank, CompressDropsAlignmentAndHighBits)
{
    PathIndexBank bank(8);
    // (0x400010 >> 2) & 0xff == 0x04.
    EXPECT_EQ(bank.compress(0x400010), 0x04u);
    EXPECT_EQ(bank.compress(0x3fc), 0xffu);
}

TEST(PathIndexBank, IndexOneIsLastTarget)
{
    PathIndexBank bank(10);
    bank.insert(0x400040);
    EXPECT_EQ(bank.index(1), bank.compress(0x400040));
    bank.insert(0x400080);
    EXPECT_EQ(bank.index(1), bank.compress(0x400080));
    EXPECT_EQ(bank.target(2), bank.compress(0x400040));
}

TEST(PathIndexBank, ObserveFollowsThbPolicy)
{
    PathIndexBank bank(10);
    bank.observe(record(BranchKind::Unconditional, 0x400000, 0x400100));
    bank.observe(record(BranchKind::DirectCall, 0x400000, 0x400200));
    bank.observe(record(BranchKind::Return, 0x400000, 0x400300));
    EXPECT_EQ(bank.occupancy(), 0u);

    bank.observe(record(BranchKind::Conditional, 0x400000, 0x400400));
    bank.observe(record(BranchKind::IndirectJump, 0x400000, 0x400500));
    bank.observe(record(BranchKind::IndirectCall, 0x400000, 0x400600));
    EXPECT_EQ(bank.occupancy(), 3u);
}

TEST(PathIndexBank, ReturnInsertionAblation)
{
    PathHistoryOptions options;
    options.includeReturns = true;
    PathIndexBank bank(10, options);
    bank.observe(record(BranchKind::Return, 0x400000, 0x400300));
    EXPECT_EQ(bank.occupancy(), 1u);
}

TEST(PathIndexBank, NotTakenDestinationIsRecorded)
{
    // A not-taken conditional branch inserts its fall-through address.
    PathIndexBank bank(10);
    bank.observe(record(BranchKind::Conditional, 0x400000, 0x400004,
                        false));
    EXPECT_EQ(bank.index(1), bank.compress(0x400004));
}

TEST(PathIndexBank, ClearResetsEverything)
{
    PathIndexBank bank(10);
    bank.insert(0x400040);
    bank.insert(0x400080);
    bank.clear();
    EXPECT_EQ(bank.occupancy(), 0u);
    EXPECT_EQ(bank.index(1), 0u);
    EXPECT_EQ(bank.index(5), 0u);
}

TEST(PathIndexBank, RotationEncodesOrder)
{
    // With rotation, inserting A then B differs from B then A; without
    // rotation the XOR is symmetric and the two orders collide.
    PathIndexBank with_rotation(10);
    with_rotation.insert(0x400040);
    with_rotation.insert(0x400080);
    PathIndexBank with_rotation_swapped(10);
    with_rotation_swapped.insert(0x400080);
    with_rotation_swapped.insert(0x400040);
    EXPECT_NE(with_rotation.index(2), with_rotation_swapped.index(2));

    PathHistoryOptions no_rotate;
    no_rotate.rotateTargets = false;
    PathIndexBank plain(10, no_rotate);
    plain.insert(0x400040);
    plain.insert(0x400080);
    PathIndexBank plain_swapped(10, no_rotate);
    plain_swapped.insert(0x400080);
    plain_swapped.insert(0x400040);
    EXPECT_EQ(plain.index(2), plain_swapped.index(2));
}

TEST(PathIndexBank, MatchesPaperHashDefinition)
{
    // HF_3 = T1 ^ rotl(T2, 1) ^ rotl(T3, 2) as k-bit numbers.
    const unsigned k = 12;
    PathIndexBank bank(k);
    const std::uint64_t t3 = 0x400100, t2 = 0x400204, t1 = 0x400308;
    bank.insert(t3);
    bank.insert(t2);
    bank.insert(t1);
    const std::uint64_t expected = bank.compress(t1)
        ^ util::rotl(bank.compress(t2), 1, k)
        ^ util::rotl(bank.compress(t3), 2, k);
    EXPECT_EQ(bank.index(3), expected);
}

TEST(PathIndexBank, HistoryBytes)
{
    // 32 targets + 32 partial sums of 14 bits = 2 * 32 * 14 / 8 bytes.
    EXPECT_EQ(PathIndexBank(14).historyBytes(), 112u);
}

TEST(PathIndexBank, HistoryStackRestoresAcrossCalls)
{
    PathHistoryOptions options;
    options.historyStack = true;
    PathIndexBank bank(12, options);

    // Build caller history.
    bank.observe(record(BranchKind::Conditional, 0x400000, 0x400040));
    bank.observe(record(BranchKind::Conditional, 0x400040, 0x400080));
    const std::uint64_t caller_index = bank.index(2);

    // Call, then callee pollutes the history...
    bank.observe(record(BranchKind::DirectCall, 0x400080, 0x500000));
    bank.observe(record(BranchKind::Conditional, 0x500000, 0x500040));
    bank.observe(record(BranchKind::IndirectJump, 0x500040, 0x500400));
    EXPECT_NE(bank.index(2), caller_index);

    // ...and the return restores the caller's view exactly.
    bank.observe(record(BranchKind::Return, 0x500400, 0x400084));
    EXPECT_EQ(bank.index(2), caller_index);
    for (unsigned length = 1; length <= bank.depth(); ++length)
        EXPECT_EQ(bank.index(length), bank.directIndex(length));
}

TEST(PathIndexBank, HistoryStackHandlesUnderflowAndOverflow)
{
    PathHistoryOptions options;
    options.historyStack = true;
    options.historyStackDepth = 2;
    PathIndexBank bank(12, options);

    // Return with no saved snapshot: ignored, no crash.
    bank.observe(record(BranchKind::Return, 0x400000, 0x400004));

    // Deep call chain overflows the snapshot stack (oldest dropped).
    for (int i = 0; i < 5; ++i) {
        bank.observe(record(BranchKind::DirectCall, 0x400000 + 4 * i,
                            0x500000 + 0x100 * i));
        bank.observe(record(BranchKind::Conditional, 0x500000, 0x500040));
    }
    for (int i = 0; i < 5; ++i)
        bank.observe(record(BranchKind::Return, 0x500000, 0x400004));
    // Still functional after the unbalanced sequence.
    bank.insert(0x400040);
    EXPECT_EQ(bank.index(1), bank.compress(0x400040));
}

TEST(PathIndexBank, HistoryStackOffByDefault)
{
    PathIndexBank bank(12);
    bank.observe(record(BranchKind::Conditional, 0x400000, 0x400040));
    const std::uint64_t before = bank.index(1);
    bank.observe(record(BranchKind::DirectCall, 0x400040, 0x500000));
    bank.observe(record(BranchKind::Return, 0x500000, 0x400044));
    // Without the extension, calls and returns leave history alone.
    EXPECT_EQ(bank.index(1), before);
}

TEST(PathIndexBank, RejectsBadConfiguration)
{
    EXPECT_THROW(PathIndexBank(0), std::runtime_error);
    EXPECT_THROW(PathIndexBank(33), std::runtime_error);
    PathHistoryOptions bad_depth;
    bad_depth.depth = 0;
    EXPECT_THROW(PathIndexBank(10, bad_depth), std::runtime_error);
    bad_depth.depth = 33;
    EXPECT_THROW(PathIndexBank(10, bad_depth), std::runtime_error);
}

/**
 * The paper's central hardware trick (Section 4.1): the incrementally
 * maintained partial-sum registers must equal direct rotate-and-XOR
 * recomputation after every insertion, for every length, width, and
 * rotation mode.
 */
class IncrementalHashProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>>
{
};

TEST_P(IncrementalHashProperty, IncrementalEqualsDirect)
{
    const auto [index_bits, rotate] = GetParam();
    PathHistoryOptions options;
    options.rotateTargets = rotate;
    PathIndexBank bank(index_bits, options);
    util::Rng rng(index_bits * 31 + (rotate ? 1 : 0));

    for (int step = 0; step < 500; ++step) {
        bank.insert(rng.next() & 0xffffffff);
        for (unsigned length = 1; length <= bank.depth(); ++length) {
            ASSERT_EQ(bank.index(length), bank.directIndex(length))
                << "step " << step << " length " << length;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndRotation, IncrementalHashProperty,
    ::testing::Combine(::testing::Values(1u, 5u, 7u, 9u, 12u, 14u, 16u,
                                         20u, 24u, 32u),
                       ::testing::Bool()));

// --- HashAssignment ---------------------------------------------------

TEST(HashAssignment, DefaultForUnknownBranches)
{
    HashAssignment assignment(4);
    EXPECT_EQ(assignment.lookup(0x400000), 4u);
    EXPECT_FALSE(assignment.contains(0x400000));
    assignment.assign(0x400000, 9);
    EXPECT_EQ(assignment.lookup(0x400000), 9u);
    EXPECT_TRUE(assignment.contains(0x400000));
    EXPECT_EQ(assignment.size(), 1u);
}

TEST(HashAssignment, RejectsOutOfRangeLengths)
{
    HashAssignment assignment(1);
    EXPECT_THROW(assignment.assign(0x400000, 0), std::runtime_error);
    EXPECT_THROW(assignment.assign(0x400000, 33), std::runtime_error);
    EXPECT_THROW(assignment.setDefaultLength(0), std::runtime_error);
    EXPECT_THROW(HashAssignment(40), std::runtime_error);
}

TEST(HashAssignment, LengthHistogram)
{
    HashAssignment assignment(1);
    assignment.assign(0x400000, 3);
    assignment.assign(0x400004, 3);
    assignment.assign(0x400008, 7);
    const auto histogram = assignment.lengthHistogram();
    EXPECT_EQ(histogram.bucket(3), 2u);
    EXPECT_EQ(histogram.bucket(7), 1u);
    EXPECT_EQ(histogram.total(), 3u);
}

TEST(HashAssignment, SaveLoadRoundTrip)
{
    const std::string path = testing::TempDir() + "/assignment.txt";
    HashAssignment assignment(5);
    assignment.assign(0x400000, 3);
    assignment.assign(0x400abc, 17);
    assignment.save(path);

    const HashAssignment loaded = HashAssignment::load(path);
    EXPECT_EQ(loaded.defaultLength(), 5u);
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.lookup(0x400000), 3u);
    EXPECT_EQ(loaded.lookup(0x400abc), 17u);
    EXPECT_EQ(loaded.lookup(0x999999), 5u);
    std::remove(path.c_str());
}

TEST(HashAssignment, LoadRejectsMalformedFiles)
{
    const std::string path = testing::TempDir() + "/bad_assignment.txt";
    std::FILE *file = std::fopen(path.c_str(), "w");
    std::fputs("not an assignment file\n", file);
    std::fclose(file);
    EXPECT_THROW(HashAssignment::load(path), std::runtime_error);
    EXPECT_THROW(HashAssignment::load("/no/such/file"),
                 std::runtime_error);
    std::remove(path.c_str());
}

// --- FLP / VLP predictors ---------------------------------------------

/**
 * Build a synthetic record stream in which branch B's outcome equals
 * the direction taken at a "context" branch exactly @p distance
 * history-eligible branches earlier (with filler conditional branches
 * of constant destination in between).
 */
class PathDistanceTrace
{
  public:
    PathDistanceTrace(unsigned distance, std::uint64_t seed)
        : distance_(distance), rng_(seed)
    {
    }

    /** Feed one round through @p predictor; returns true if the
     *  prediction for B was correct. */
    template <typename Predictor>
    bool
    round(Predictor &predictor)
    {
        const bool context_taken = rng_.nextBool(0.5);
        // Context branch: destination depends on its direction.
        feed(predictor,
             record(BranchKind::Conditional, 0x400000,
                    context_taken ? 0x400800 : 0x400004, context_taken),
             nullptr);
        // distance-1 filler branches with constant destinations.
        for (unsigned i = 0; i + 1 < distance_; ++i) {
            feed(predictor,
                 record(BranchKind::Conditional, 0x401000 + 16 * i,
                        0x401008 + 16 * i, true),
                 nullptr);
        }
        // The correlated branch B.
        bool correct = false;
        feed(predictor,
             record(BranchKind::Conditional, 0x402000,
                    context_taken ? 0x402040 : 0x402004, context_taken),
             &correct);
        return correct;
    }

  private:
    template <typename Predictor>
    void
    feed(Predictor &predictor, const BranchRecord &branch,
         bool *correct)
    {
        const bool predicted = predictor.predict(branch);
        if (correct != nullptr)
            *correct = predicted == branch.taken;
        predictor.update(branch);
        predictor.observe(branch);
    }

    unsigned distance_;
    util::Rng rng_;
};

TEST(PathConditionalPredictor, LearnsBranchAtCoveredDistance)
{
    // B correlates with the path entry at distance 6; a fixed length
    // of 6 covers it.
    PathConditionalPredictor predictor(12, 6);
    PathDistanceTrace trace(6, 77);
    unsigned misses = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool correct = trace.round(predictor);
        if (i >= 1000 && !correct)
            ++misses;
    }
    EXPECT_LT(misses, 10u);
}

TEST(PathConditionalPredictor, FailsBeyondItsLength)
{
    // A fixed length of 3 cannot see the distance-6 context.
    PathConditionalPredictor predictor(12, 3);
    PathDistanceTrace trace(6, 78);
    unsigned misses = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool correct = trace.round(predictor);
        if (i >= 1000 && !correct)
            ++misses;
    }
    EXPECT_GT(misses, 300u); // essentially a coin flip
}

TEST(PathConditionalPredictor, VariableAssignmentSelectsPerBranch)
{
    // With the profiled assignment pointing B at length 6, the VLP
    // predictor learns it even though the default is 1.
    HashAssignment assignment(1);
    assignment.assign(0x402000, 6);
    PathConditionalPredictor predictor(12, assignment);
    EXPECT_EQ(predictor.name(), "variable length path");
    PathDistanceTrace trace(6, 79);
    unsigned misses = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool correct = trace.round(predictor);
        if (i >= 1000 && !correct)
            ++misses;
    }
    EXPECT_LT(misses, 10u);
}

TEST(PathConditionalPredictor, NamesAndSizes)
{
    PathConditionalPredictor flp(14, 4);
    EXPECT_EQ(flp.name(), "fixed length path");
    EXPECT_EQ(flp.sizeBytes(), 4096u);
    EXPECT_EQ(flp.assignment().defaultLength(), 4u);
    EXPECT_GT(flp.historyBytes(), 0u);
}

TEST(PathConditionalPredictor, AssignmentLengthsClampToDepth)
{
    // An assignment built for a 32-deep THB must still work on a
    // predictor configured with a shallower history.
    PathHistoryOptions options;
    options.depth = 8;
    HashAssignment assignment(1);
    assignment.assign(0x400000, 32);
    PathConditionalPredictor predictor(10, assignment, options);
    // Must not crash; uses length 8 instead.
    const BranchRecord branch =
        record(BranchKind::Conditional, 0x400000, 0x400040);
    predictor.predict(branch);
    predictor.update(branch);
}

TEST(PathIndirectPredictor, LearnsPathDependentTargets)
{
    // Target of the indirect jump depends on the previous conditional
    // branch's direction (path length 1).
    PathIndirectPredictor predictor(9, 1);
    util::Rng rng(13);
    unsigned misses = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool direction = rng.nextBool(0.5);
        const BranchRecord guard =
            record(BranchKind::Conditional, 0x400000,
                   direction ? 0x400800 : 0x400004, direction);
        predictor.observe(guard);
        const BranchRecord jump =
            record(BranchKind::IndirectJump, 0x402000,
                   direction ? 0x500000 : 0x600000);
        if (i >= 1000 && predictor.predict(jump) != jump.nextPc)
            ++misses;
        predictor.update(jump);
        predictor.observe(jump);
    }
    EXPECT_LT(misses, 10u);
}

TEST(PathIndirectPredictor, StoresLow32BitsOnly)
{
    PathIndirectPredictor predictor(9, 1);
    const BranchRecord jump = record(BranchKind::IndirectJump,
                                     0xaaaa000000402000ULL,
                                     0xaaaa000000500000ULL);
    predictor.predict(jump);
    predictor.update(jump);
    // The table keeps the low 32 bits; the upper bits come from the
    // fetch address (paper footnote in Section 5.2.2).
    EXPECT_EQ(predictor.predict(jump), 0xaaaa000000500000ULL);
    EXPECT_EQ(predictor.name(), "fixed length path");
    EXPECT_EQ(predictor.sizeBytes(), 2048u);
}

TEST(PathIndirectPredictor, VariableName)
{
    PathIndirectPredictor predictor(9, HashAssignment(3));
    EXPECT_EQ(predictor.name(), "variable length path");
}

// --- HFNT -------------------------------------------------------------

TEST(Hfnt, ColdPredictsShortestPath)
{
    HashFunctionNumberTable hfnt(8);
    EXPECT_EQ(hfnt.predictNumber(0x400000), 1u);
}

TEST(Hfnt, LearnsAndCountsMismatches)
{
    HashFunctionNumberTable hfnt(8);
    EXPECT_EQ(hfnt.predictNumber(0x400000), 1u);
    hfnt.update(0x400000, 7); // mismatch: entry held 1
    EXPECT_EQ(hfnt.mismatches(), 1u);
    EXPECT_EQ(hfnt.predictNumber(0x400000), 7u);
    hfnt.update(0x400000, 7); // now matches
    EXPECT_EQ(hfnt.mismatches(), 1u);
    EXPECT_EQ(hfnt.lookups(), 2u);
    EXPECT_DOUBLE_EQ(hfnt.mismatchRate(), 50.0);
}

TEST(Hfnt, AliasedBranchesConflict)
{
    HashFunctionNumberTable hfnt(2); // 4 entries: heavy aliasing
    hfnt.update(0x400000, 9);
    // 0x400040 >> 2 has the same low 2 bits as 0x400000 >> 2.
    EXPECT_EQ(hfnt.predictNumber(0x400040), 9u);
}

TEST(Hfnt, SizeBytes)
{
    EXPECT_EQ(HashFunctionNumberTable(8).sizeBytes(), 160u); // 256*5/8
}

} // anonymous namespace
