/**
 * @file
 * Unit tests for the related-work predictors added beyond the paper's
 * direct baselines: agree, bi-mode, gselect, the dual-length path
 * hybrid, and the elastic history buffer.
 */

#include <gtest/gtest.h>

#include "predictors/agree.h"
#include "predictors/bimode.h"
#include "predictors/btb.h"
#include "predictors/dual_length.h"
#include "predictors/elastic.h"
#include "predictors/gselect.h"
#include "predictors/gshare.h"
#include "util/rng.h"

namespace {

using namespace vlp;
using namespace vlp::pred;
using trace::BranchKind;
using trace::BranchRecord;

BranchRecord
cond(std::uint64_t pc, bool taken)
{
    BranchRecord record;
    record.pc = pc;
    record.nextPc = taken ? pc + 64 : pc + 4;
    record.taken = taken;
    record.kind = BranchKind::Conditional;
    return record;
}

BranchRecord
indirect(std::uint64_t pc, std::uint64_t target)
{
    BranchRecord record;
    record.pc = pc;
    record.nextPc = target;
    record.taken = true;
    record.kind = BranchKind::IndirectJump;
    return record;
}

template <typename Predictor, typename Next>
unsigned
drive(Predictor &predictor, unsigned total, unsigned measured,
      Next next)
{
    unsigned misses = 0;
    for (unsigned i = 0; i < total; ++i) {
        const BranchRecord record = next(i);
        const bool predicted = predictor.predict(record);
        if (i >= total - measured && predicted != record.taken)
            ++misses;
        predictor.update(record);
        predictor.observe(record);
    }
    return misses;
}

// --- agree ------------------------------------------------------------

TEST(Agree, LearnsAlternation)
{
    AgreePredictor agree(10);
    const unsigned misses = drive(agree, 2000, 1000, [](unsigned i) {
        return cond(0x400000, i % 2 == 0);
    });
    EXPECT_LT(misses, 10u);
}

TEST(Agree, BiasReducesDestructiveAliasing)
{
    // Two strongly biased branches of opposite direction that alias in
    // a tiny counter table: gshare's shared counters fight, agree's
    // biasing bits make both map to "agree".
    AgreePredictor agree(2, 12);
    GsharePredictor gshare(2);
    util::Rng rng(9);
    unsigned agree_misses = 0, gshare_misses = 0;
    for (unsigned i = 0; i < 4000; ++i) {
        const bool first = rng.nextBool(0.5);
        const BranchRecord record =
            first ? cond(0x400000, true) : cond(0x400100, false);
        if (i >= 2000) {
            agree_misses +=
                agree.predict(record) != record.taken ? 1 : 0;
            gshare_misses +=
                gshare.predict(record) != record.taken ? 1 : 0;
        } else {
            agree.predict(record);
            gshare.predict(record);
        }
        agree.update(record);
        gshare.update(record);
        agree.observe(record);
        gshare.observe(record);
    }
    EXPECT_LT(agree_misses * 3, gshare_misses + 30);
}

TEST(Agree, SizeIncludesBiasBits)
{
    AgreePredictor agree(10, 12);
    EXPECT_EQ(agree.sizeBytes(), 1024u / 4 + 4096u / 8);
}

// --- bi-mode ----------------------------------------------------------

TEST(BiMode, LearnsAlternation)
{
    BiModePredictor bimode(10);
    const unsigned misses = drive(bimode, 2000, 1000, [](unsigned i) {
        return cond(0x400000, i % 2 == 0);
    });
    EXPECT_LT(misses, 10u);
}

TEST(BiMode, SeparatesOppositeBiases)
{
    // PCs must differ within the 4 choice-index bits.
    BiModePredictor bimode(4);
    util::Rng rng(17);
    unsigned misses = 0;
    for (unsigned i = 0; i < 6000; ++i) {
        const bool first = rng.nextBool(0.5);
        const BranchRecord record =
            first ? cond(0x400000, true) : cond(0x400014, false);
        if (i >= 3000)
            misses += bimode.predict(record) != record.taken ? 1 : 0;
        else
            bimode.predict(record);
        bimode.update(record);
        bimode.observe(record);
    }
    EXPECT_LT(misses, 120u);
}

TEST(BiMode, SizeCountsAllThreeTables)
{
    BiModePredictor bimode(10, 10);
    EXPECT_EQ(bimode.sizeBytes(), 3u * 1024 / 4);
}

// --- gselect ----------------------------------------------------------

TEST(Gselect, LearnsShortPatterns)
{
    GselectPredictor gselect(12, 4);
    const unsigned misses = drive(gselect, 2000, 1000, [](unsigned i) {
        return cond(0x400000, i % 3 == 0);
    });
    EXPECT_LT(misses, 10u);
}

TEST(Gselect, PcBitsIsolateBranches)
{
    // Two branches with different steady directions must not collide:
    // their PC bits are part of the index.
    // PCs differing in the low word-address bits (the ones the index
    // keeps).
    GselectPredictor gselect(10, 4);
    for (int i = 0; i < 50; ++i) {
        for (const auto &record :
             {cond(0x400000, true), cond(0x400014, false)}) {
            gselect.predict(record);
            gselect.update(record);
            gselect.observe(record);
        }
    }
    EXPECT_TRUE(gselect.predict(cond(0x400000, true)));
    EXPECT_FALSE(gselect.predict(cond(0x400014, false)));
}

// --- dual-length hybrid -------------------------------------------------

TEST(DualLength, ShortComponentHandlesFirstOrderChains)
{
    DualLengthIndirectPredictor dual(8, 1, 8);
    unsigned state = 0;
    unsigned misses = 0;
    for (unsigned i = 0; i < 6000; ++i) {
        state = (state * 13 + 7) % 4;
        const BranchRecord jump =
            indirect(0x400000, 0x500000 + state * 8);
        if (i >= 3000)
            misses += dual.predict(jump) != jump.nextPc ? 1 : 0;
        else
            dual.predict(jump);
        dual.update(jump);
        dual.observe(jump);
    }
    EXPECT_LT(misses, 60u);
}

TEST(DualLength, LongComponentCapturesDeepCorrelation)
{
    // The target repeats with period 6 in the *indirect target*
    // sequence; a 1-deep history cannot disambiguate (the sequence
    // revisits the same previous-target with different successors),
    // a 6-deep one can. One-bit chunks keep the 6-deep history within
    // the 8-bit index so no XOR folding collapses the rotations
    // (folded path histories lose ordering — the very weakness the
    // paper's rotation scheme addresses).
    const unsigned sequence[] = {0, 1, 0, 2, 0, 3};
    DualLengthIndirectPredictor dual(8, 1, 6, 1);
    unsigned misses = 0;
    for (unsigned i = 0; i < 12000; ++i) {
        const BranchRecord jump = indirect(
            0x400000, 0x500000 + sequence[i % 6] * 4);
        if (i >= 6000)
            misses += dual.predict(jump) != jump.nextPc ? 1 : 0;
        else
            dual.predict(jump);
        dual.update(jump);
        dual.observe(jump);
    }
    // The selector must converge on the long component.
    EXPECT_LT(misses, 200u);

    // A pure short-history predictor cannot get the successors of
    // target 0 right (they cycle 1, 2, 3).
    DualLengthIndirectPredictor short_only(8, 1, 1, 1);
    unsigned short_misses = 0;
    for (unsigned i = 0; i < 12000; ++i) {
        const BranchRecord jump = indirect(
            0x400000, 0x500000 + sequence[i % 6] * 4);
        if (i >= 6000)
            short_misses +=
                short_only.predict(jump) != jump.nextPc ? 1 : 0;
        else
            short_only.predict(jump);
        short_only.update(jump);
        short_only.observe(jump);
    }
    EXPECT_GT(short_misses, 1000u);
}

TEST(DualLength, SizeCountsBothTablesAndSelector)
{
    DualLengthIndirectPredictor dual(8);
    EXPECT_EQ(dual.sizeBytes(), 2u * 256 * 4 + 256 / 4);
}

// --- elastic gshare ------------------------------------------------------

TEST(Elastic, AssignmentLookup)
{
    PatternLengthAssignment assignment;
    assignment.defaultLength = 3;
    assignment.lengths[0x400000] = 9;
    EXPECT_EQ(assignment.lookup(0x400000), 9u);
    EXPECT_EQ(assignment.lookup(0x999999), 3u);
}

TEST(Elastic, ProfilerPicksLongLengthForDeepPattern)
{
    // Branch outcome equals the conditional outcome 7 branches back;
    // short histories can't see it, length >= 7 can.
    trace::VectorTraceSource trace;
    util::Rng rng(23);
    std::vector<bool> recent(8, false);
    for (unsigned i = 0; i < 6000; ++i) {
        const bool fresh = rng.nextBool(0.5);
        trace.append(cond(0x400000, fresh));
        for (unsigned j = 0; j < 6; ++j)
            trace.append(cond(0x401000 + 16 * j, true));
        recent.push_back(fresh);
        trace.append(cond(0x402000, fresh));
    }

    ElasticProfiler profiler(12);
    const PatternLengthAssignment assignment = profiler.profile(trace);
    EXPECT_GE(assignment.lookup(0x402000), 7u);

    // And the resulting predictor nails the branch.
    ElasticGsharePredictor elastic(12, assignment);
    trace.reset();
    trace::BranchRecord record;
    std::uint64_t misses = 0;
    while (trace.next(record)) {
        const bool predicted = elastic.predict(record);
        if (record.pc == 0x402000 && predicted != record.taken)
            ++misses;
        elastic.update(record);
        elastic.observe(record);
    }
    EXPECT_LT(misses, 60u);
}

TEST(Elastic, ProfilerPicksShortLengthForBiasedBranch)
{
    // A branch that is simply always taken amid noisy neighbours: the
    // profiler should give it a short (low-dilution) history.
    trace::VectorTraceSource trace;
    util::Rng rng(29);
    for (unsigned i = 0; i < 4000; ++i) {
        trace.append(cond(0x400000, rng.nextBool(0.5))); // pure noise
        trace.append(cond(0x402000, true));
    }
    ElasticProfiler profiler(10);
    const PatternLengthAssignment assignment = profiler.profile(trace);
    EXPECT_LE(assignment.lookup(0x402000), 2u);
}

TEST(Elastic, LengthsClampToIndexBits)
{
    PatternLengthAssignment assignment;
    assignment.lengths[0x400000] = 30; // beyond the table's k=8
    ElasticGsharePredictor elastic(8, assignment);
    const BranchRecord record = cond(0x400000, true);
    elastic.predict(record); // must not crash
    elastic.update(record);
}

} // anonymous namespace
