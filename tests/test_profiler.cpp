/**
 * @file
 * Tests for the two-step profiling heuristic (Section 3.5): step-1
 * sweeps, candidate selection, step-2 iteration, and end-to-end
 * assignment quality on crafted traces.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "core/path_predictor.h"
#include "core/profiler.h"
#include "util/rng.h"

namespace {

using namespace vlp;
using namespace vlp::core;
using trace::BranchKind;
using trace::BranchRecord;

BranchRecord
cond(std::uint64_t pc, std::uint64_t next, bool taken)
{
    BranchRecord record;
    record.pc = pc;
    record.nextPc = next;
    record.taken = taken;
    record.kind = BranchKind::Conditional;
    return record;
}

BranchRecord
indirect(std::uint64_t pc, std::uint64_t target)
{
    BranchRecord record;
    record.pc = pc;
    record.nextPc = target;
    record.taken = true;
    record.kind = BranchKind::IndirectJump;
    return record;
}

/**
 * A trace with two path-correlated branches of different required
 * lengths: branch X (0x402000) needs distance @p dx, branch Y
 * (0x403000) needs distance @p dy; filler branches in between.
 */
trace::VectorTraceSource
twoDistanceTrace(unsigned dx, unsigned dy, unsigned rounds,
                 std::uint64_t seed)
{
    trace::VectorTraceSource trace;
    util::Rng rng(seed);
    for (unsigned round = 0; round < rounds; ++round) {
        const bool context = rng.nextBool(0.5);
        trace.append(cond(0x400000, context ? 0x400800 : 0x400004,
                          context));
        const unsigned max_distance = std::max(dx, dy);
        for (unsigned i = 0; i + 1 < max_distance; ++i) {
            trace.append(cond(0x401000 + 16 * i, 0x401008 + 16 * i,
                              true));
            // X fires when exactly dx history entries cover the
            // context branch.
            if (i + 2 == dx) {
                trace.append(cond(0x402000,
                                  context ? 0x402040 : 0x402004,
                                  context));
            }
            if (i + 2 == dy) {
                trace.append(cond(0x403000,
                                  context ? 0x403040 : 0x403004,
                                  context));
            }
        }
    }
    return trace;
}

TEST(FixedLengthSweep, RateAndBestLength)
{
    FixedLengthSweep sweep;
    sweep.mispredictions = {30, 10, 20};
    sweep.branches = 200;
    EXPECT_DOUBLE_EQ(sweep.rate(1), 15.0);
    EXPECT_DOUBLE_EQ(sweep.rate(2), 5.0);
    EXPECT_EQ(sweep.bestLength(), 2u);
}

TEST(FixedLengthSweep, ZeroBranchesRateIsZeroNotNan)
{
    // A benchmark with no branches of the profiled class must report
    // 0 %, not 0/0 = NaN, so suite averages stay finite.
    FixedLengthSweep sweep;
    sweep.mispredictions = {0, 0, 0};
    sweep.branches = 0;
    for (unsigned length = 1; length <= 3; ++length) {
        EXPECT_FALSE(std::isnan(sweep.rate(length)));
        EXPECT_DOUBLE_EQ(sweep.rate(length), 0.0);
    }
}

TEST(FixedLengthSweep, TiesPreferShorterLength)
{
    FixedLengthSweep sweep;
    sweep.mispredictions = {10, 5, 5, 7};
    sweep.branches = 100;
    EXPECT_EQ(sweep.bestLength(), 2u);
}

TEST(ProfileOptions, Validation)
{
    ProfileOptions bad;
    bad.maxLength = 0;
    EXPECT_THROW(ConditionalProfiler{bad}, std::runtime_error);
    bad = ProfileOptions{};
    bad.maxLength = 40;
    EXPECT_THROW(ConditionalProfiler{bad}, std::runtime_error);
    bad = ProfileOptions{};
    bad.candidates = 0;
    EXPECT_THROW(IndirectProfiler{bad}, std::runtime_error);
    bad = ProfileOptions{};
    bad.iterations = 0;
    EXPECT_THROW(IndirectProfiler{bad}, std::runtime_error);
}

TEST(ProfileOptions, RejectsZeroOrDescendingLengthRange)
{
    // A zero minimum would sweep "length 0" predictors that cannot
    // exist; a descending range would silently produce an empty sweep.
    // Both must fail at construction, for both profiler classes.
    ProfileOptions bad;
    bad.minLength = 0;
    EXPECT_THROW(ConditionalProfiler{bad}, std::runtime_error);
    EXPECT_THROW(IndirectProfiler{bad}, std::runtime_error);

    bad = ProfileOptions{};
    bad.minLength = 9;
    bad.maxLength = 4;
    try {
        ConditionalProfiler profiler(bad);
        FAIL() << "expected a descending range to be rejected";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what()).find("descending"),
                  std::string::npos)
            << error.what();
    }
    EXPECT_THROW(IndirectProfiler{bad}, std::runtime_error);
}

TEST(ProfileOptions, RejectsBadIndexBits)
{
    ProfileOptions bad;
    bad.indexBits = 0;
    EXPECT_THROW(ConditionalProfiler{bad}, std::runtime_error);
    bad = ProfileOptions{};
    bad.indexBits = 31; // a per-length table would need 2^31 entries
    EXPECT_THROW(IndirectProfiler{bad}, std::runtime_error);
}

TEST(ConditionalProfiler, RestrictedLengthRangeSweeps)
{
    auto trace = twoDistanceTrace(4, 4, 1500, 42);
    ProfileOptions options;
    options.indexBits = 12;
    options.minLength = 3;
    options.maxLength = 8;
    ConditionalProfiler profiler(options);
    const FixedLengthSweep &sweep = profiler.runStep1(trace);
    EXPECT_EQ(sweep.minLength, 3u);
    // Lengths below the range were never simulated...
    EXPECT_EQ(sweep.mispredictions[0], 0u);
    EXPECT_EQ(sweep.mispredictions[1], 0u);
    // ...and the best length comes from the swept range only.
    const unsigned best = sweep.bestLength();
    EXPECT_GE(best, 3u);
    EXPECT_LE(best, 8u);

    // The restricted profile still yields a usable assignment whose
    // lengths all fall inside the range.
    trace.reset();
    const auto assignment = profiler.runStep2(trace);
    EXPECT_GE(assignment.defaultLength(), 3u);
    EXPECT_LE(assignment.defaultLength(), 8u);
}

TEST(ConditionalProfiler, Step2RequiresStep1)
{
    ProfileOptions options;
    options.indexBits = 10;
    ConditionalProfiler profiler(options);
    trace::VectorTraceSource empty;
    EXPECT_THROW(profiler.runStep2(empty), std::runtime_error);
}

TEST(ConditionalProfiler, SweepIdentifiesUsefulLengths)
{
    auto trace = twoDistanceTrace(4, 4, 1500, 42);
    ProfileOptions options;
    options.indexBits = 12;
    options.maxLength = 8;
    ConditionalProfiler profiler(options);
    const FixedLengthSweep &sweep = profiler.runStep1(trace);
    // Lengths >= 4 cover the context; lengths < 4 do not. The filler
    // branches are perfectly predictable either way, so the sweep
    // must show a clear drop at length 4.
    EXPECT_LT(sweep.rate(4) + 2.0, sweep.rate(2));
    EXPECT_GE(sweep.bestLength(), 4u);
}

TEST(ConditionalProfiler, AssignsCoveringLengths)
{
    auto trace = twoDistanceTrace(3, 7, 2000, 43);
    ProfileOptions options;
    options.indexBits = 12;
    options.maxLength = 10;
    ConditionalProfiler profiler(options);
    const HashAssignment assignment = profiler.profile(trace);

    // Branch X needs distance 3. Branch Y correlates with the context
    // branch at distance 8 — but X's own destination also encodes the
    // context and sits at distance 5 from Y, so any length >= 5
    // suffices (the profiler legitimately exploits the transitive
    // correlation).
    EXPECT_GE(assignment.lookup(0x402000), 3u);
    EXPECT_GE(assignment.lookup(0x403000), 5u);
    // Every profiled branch got an explicit assignment.
    EXPECT_TRUE(assignment.contains(0x400000));
    EXPECT_TRUE(assignment.contains(0x402000));
    EXPECT_TRUE(assignment.contains(0x403000));
    // Unprofiled branches fall back to the default.
    EXPECT_FALSE(assignment.contains(0x999999));
}

TEST(ConditionalProfiler, AssignmentBeatsWrongFixedLength)
{
    auto profile_trace = twoDistanceTrace(3, 7, 2000, 44);
    auto test_trace = twoDistanceTrace(3, 7, 2000, 45);

    ProfileOptions options;
    options.indexBits = 12;
    options.maxLength = 10;
    ConditionalProfiler profiler(options);
    const HashAssignment assignment = profiler.profile(profile_trace);

    PathConditionalPredictor vlp(12, assignment);
    PathConditionalPredictor flp(12, 2); // covers neither distance

    // Count misses only on the two correlated branches: the context
    // branch itself is a coin flip no predictor can learn, and would
    // otherwise dominate both counts equally.
    auto evaluate = [&test_trace](PathConditionalPredictor &predictor) {
        test_trace.reset();
        BranchRecord record;
        std::uint64_t misses = 0;
        while (test_trace.next(record)) {
            if (record.isConditional()) {
                const bool predicted = predictor.predict(record);
                if ((record.pc == 0x402000 || record.pc == 0x403000)
                    && predicted != record.taken) {
                    ++misses;
                }
                predictor.update(record);
            }
            predictor.observe(record);
        }
        return misses;
    };

    const std::uint64_t vlp_misses = evaluate(vlp);
    const std::uint64_t flp_misses = evaluate(flp);
    EXPECT_LT(vlp_misses * 3, flp_misses);
}

TEST(IndirectProfiler, AssignsCoveringLength)
{
    // Indirect branch whose target depends on a context branch 4
    // history entries back.
    trace::VectorTraceSource trace;
    util::Rng rng(46);
    for (unsigned round = 0; round < 2000; ++round) {
        const bool context = rng.nextBool(0.5);
        trace.append(cond(0x400000, context ? 0x400800 : 0x400004,
                          context));
        for (unsigned i = 0; i < 3; ++i)
            trace.append(cond(0x401000 + 16 * i, 0x401008 + 16 * i,
                              true));
        trace.append(indirect(0x405000,
                              context ? 0x500000 : 0x600000));
    }

    ProfileOptions options;
    options.indexBits = 9;
    options.maxLength = 8;
    IndirectProfiler profiler(options);
    const HashAssignment assignment = profiler.profile(trace);
    EXPECT_GE(assignment.lookup(0x405000), 4u);

    // The assignment predicts the test-side stream nearly perfectly.
    PathIndirectPredictor vlp(9, assignment);
    trace.reset();
    BranchRecord record;
    std::uint64_t misses = 0, total = 0;
    while (trace.next(record)) {
        if (record.isIndirect()) {
            ++total;
            if (vlp.predict(record) != record.nextPc)
                ++misses;
            vlp.update(record);
        }
        vlp.observe(record);
    }
    EXPECT_LT(misses * 100, total * 2);
}

TEST(IndirectProfiler, Step2RequiresStep1)
{
    ProfileOptions options;
    options.indexBits = 9;
    IndirectProfiler profiler(options);
    trace::VectorTraceSource empty;
    EXPECT_THROW(profiler.runStep2(empty), std::runtime_error);
}

// --- CandidateSelector (white box) -------------------------------------

std::unordered_map<std::uint64_t, BranchProfile>
singleBranchProfile(std::uint64_t pc,
                    std::initializer_list<std::uint32_t> corrects)
{
    std::unordered_map<std::uint64_t, BranchProfile> profiles;
    BranchProfile profile;
    unsigned index = 0;
    for (std::uint32_t correct : corrects)
        profile.correct[index++] = correct;
    profile.executions = 100;
    profiles[pc] = profile;
    return profiles;
}

FixedLengthSweep
flatSweep(unsigned lengths, unsigned best)
{
    FixedLengthSweep sweep;
    sweep.mispredictions.assign(lengths, 100);
    sweep.mispredictions[best - 1] = 1;
    sweep.branches = 1000;
    return sweep;
}

TEST(CandidateSelector, RanksCandidatesByStep1Accuracy)
{
    const auto profiles =
        singleBranchProfile(0x400000, {10, 90, 50, 80});
    CandidateSelector selector(profiles, flatSweep(4, 1), 3, 4);
    // Best candidate first: length 2 (90 correct).
    const HashAssignment first = selector.nextAssignment();
    EXPECT_EQ(first.lookup(0x400000), 2u);
    EXPECT_EQ(selector.defaultLength(), 1u);
}

TEST(BranchProfile, CountersSaturateAtCeiling)
{
    BranchProfile profile;
    profile.executions = BranchProfile::saturated - 1;
    profile.addExecution();
    EXPECT_EQ(profile.executions, BranchProfile::saturated);
    profile.addExecution();
    EXPECT_EQ(profile.executions, BranchProfile::saturated);

    profile.correct[4] = BranchProfile::saturated - 1;
    profile.addCorrect(5);
    profile.addCorrect(5);
    EXPECT_EQ(profile.correct[4], BranchProfile::saturated);
}

TEST(CandidateSelector, SaturatedCountsStillRankSanely)
{
    // A branch profiled past the 32-bit ceiling: counts stick at the
    // ceiling instead of wrapping to near zero, so the most accurate
    // length still outranks lengths that stayed below the ceiling
    // and ties at the ceiling break toward the shorter length.
    const auto profiles = singleBranchProfile(
        0x400000, {BranchProfile::saturated - 7, 1000,
                   BranchProfile::saturated, BranchProfile::saturated});
    CandidateSelector selector(profiles, flatSweep(4, 2), 3, 4);
    const HashAssignment first = selector.nextAssignment();
    EXPECT_EQ(first.lookup(0x400000), 3u);
}

TEST(CandidateSelector, UntestedCandidatesTriedFirst)
{
    const auto profiles =
        singleBranchProfile(0x400000, {10, 90, 50, 80});
    CandidateSelector selector(profiles, flatSweep(4, 1), 3, 4);

    // Iteration 1 tests length 2 (rank 1); pretend it did terribly.
    HashAssignment tested = selector.nextAssignment();
    EXPECT_EQ(tested.lookup(0x400000), 2u);
    selector.recordResults(tested, {{0x400000, 500}});

    // Iteration 2 must try the next untested candidate (length 4,
    // rank 2) even though 500 mispredictions are on record elsewhere.
    tested = selector.nextAssignment();
    EXPECT_EQ(tested.lookup(0x400000), 4u);
    selector.recordResults(tested, {{0x400000, 50}});

    // Iteration 3: last untested candidate (length 3).
    tested = selector.nextAssignment();
    EXPECT_EQ(tested.lookup(0x400000), 3u);
    selector.recordResults(tested, {{0x400000, 200}});

    // All tested: the final choice is the minimum (length 4).
    EXPECT_EQ(selector.finalAssignment().lookup(0x400000), 4u);
    // And the next assignment would also pick it.
    EXPECT_EQ(selector.nextAssignment().lookup(0x400000), 4u);
}

TEST(CandidateSelector, MissingMispredictionCountsAsZero)
{
    const auto profiles = singleBranchProfile(0x400000, {10, 90, 50});
    CandidateSelector selector(profiles, flatSweep(3, 2), 3, 3);
    HashAssignment tested = selector.nextAssignment();
    // No entry for the pc in the results: recorded as 0 misses.
    selector.recordResults(tested, {});
    EXPECT_EQ(selector.finalAssignment().lookup(0x400000),
              tested.lookup(0x400000));
}

TEST(CandidateSelector, FewerIterationsThanCandidates)
{
    const auto profiles =
        singleBranchProfile(0x400000, {10, 90, 50, 80});
    CandidateSelector selector(profiles, flatSweep(4, 1), 3, 4);
    HashAssignment tested = selector.nextAssignment();
    selector.recordResults(tested, {{0x400000, 7}});
    // Only one candidate tested: it wins over untested ones.
    EXPECT_EQ(selector.finalAssignment().lookup(0x400000),
              tested.lookup(0x400000));
}

} // anonymous namespace
