/**
 * @file
 * Tests for the hardened external-trace ingestion pipeline: the
 * bounded-memory streaming reader, content hashing, the deterministic
 * fault-injection harnesses (and that every fault class actually
 * fires), the lenient text converter, the checkpoint journal, and the
 * suite runner's retry/quarantine/resume behavior — including that a
 * resumed run's report is byte-identical to an uninterrupted one.
 */

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <vector>

#include "sim/suite_runner.h"
#include "store/checkpoint.h"
#include "store/fault_injection.h"
#include "trace/byte_file.h"
#include "trace/fault_injection.h"
#include "trace/streaming.h"
#include "trace/text_io.h"
#include "trace/trace_io.h"
#include "util/logging.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;
using namespace vlp;

/** A fresh scratch directory per test, removed on teardown. */
class IngestHarness : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        directory_ = testing::TempDir() + "/vlpsim_ingest_"
            + ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        fs::remove_all(directory_);
        fs::create_directories(directory_);
    }

    void TearDown() override { fs::remove_all(directory_); }

    std::string path(const std::string &name) const
    {
        return directory_ + "/" + name;
    }

    std::string directory_;
};

/**
 * A deterministic mixed trace: a conditional working set with
 * path-correlated outcomes plus enough indirect jumps to clear the
 * suite runner's noise threshold.
 */
trace::VectorTraceSource
makeTrace(std::uint64_t seed, std::size_t records)
{
    util::Rng rng(seed);
    trace::VectorTraceSource source;
    for (std::size_t i = 0; i < records; ++i) {
        trace::BranchRecord record;
        if (rng.nextBool(0.6)) {
            record.kind = trace::BranchKind::Conditional;
            record.pc = 0x1000 + 16 * rng.nextBelow(32);
            record.taken = ((record.pc >> 4) + i / 7) % 3 != 0;
            record.nextPc =
                record.taken ? record.pc + 64 : record.pc + 4;
        } else {
            record.kind = trace::BranchKind::IndirectJump;
            record.pc = 0x8000 + 16 * rng.nextBelow(8);
            record.taken = true;
            record.nextPc = 0x9000 + 64 * ((record.pc >> 4) % 4);
        }
        source.append(record);
    }
    return source;
}

/** Flip one bit at @p offset of the file at @p path. */
void
flipBit(const std::string &path, std::uint64_t offset)
{
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(static_cast<std::streamoff>(offset));
    byte = static_cast<char>(byte ^ 0x10);
    file.write(&byte, 1);
}

// --- streaming reader -------------------------------------------------

TEST_F(IngestHarness, StreamingMatchesMaterializedReader)
{
    const auto trace = makeTrace(7, 1000);
    trace::saveTrace(trace, path("t.vbt"));

    // A deliberately tiny chunk so refill() runs many times.
    trace::StreamingTraceReader reader(path("t.vbt"), 7);
    EXPECT_EQ(reader.count(), 1000u);
    EXPECT_EQ(reader.formatVersion(), 2u);

    trace::BranchRecord record;
    std::vector<trace::BranchRecord> streamed;
    while (reader.next(record))
        streamed.push_back(record);
    EXPECT_EQ(streamed, trace.records());

    // reset() replays identically.
    reader.reset();
    std::size_t replayed = 0;
    while (reader.next(record)) {
        EXPECT_EQ(record, trace.records()[replayed]);
        ++replayed;
    }
    EXPECT_EQ(replayed, trace.records().size());
}

TEST_F(IngestHarness, StreamingHoldsPeakBufferUnderCap)
{
    trace::saveTrace(makeTrace(11, 20000), path("big.vbt"));

    constexpr std::size_t chunk = 64;
    trace::StreamingTraceReader reader(path("big.vbt"), chunk);
    trace::BranchRecord record;
    std::uint64_t read = 0;
    while (reader.next(record))
        ++read;
    EXPECT_EQ(read, 20000u);
    // 18 bytes per encoded record; the cap is independent of the
    // 20000-record file size.
    EXPECT_LE(reader.peakBufferBytes(), chunk * 18);
    EXPECT_GT(reader.peakBufferBytes(), 0u);
}

TEST_F(IngestHarness, StreamingReadsHandcraftedVbt1)
{
    // VBT1: magic + count, no checksum field, then 18-byte records.
    const auto trace = makeTrace(3, 5);
    {
        std::ofstream out(path("old.vbt"), std::ios::binary);
        out.write("VBT1", 4);
        const std::uint64_t count = trace.size();
        out.write(reinterpret_cast<const char *>(&count), 8);
        for (const trace::BranchRecord &record : trace.records()) {
            const std::uint8_t kind =
                static_cast<std::uint8_t>(record.kind);
            const std::uint8_t taken = record.taken ? 1 : 0;
            out.write(reinterpret_cast<const char *>(&kind), 1);
            out.write(reinterpret_cast<const char *>(&taken), 1);
            out.write(reinterpret_cast<const char *>(&record.pc), 8);
            out.write(reinterpret_cast<const char *>(&record.nextPc),
                      8);
        }
    }

    trace::StreamingTraceReader streaming(path("old.vbt"), 2);
    EXPECT_EQ(streaming.formatVersion(), 1u);
    trace::BranchRecord record;
    std::vector<trace::BranchRecord> streamed;
    while (streaming.next(record))
        streamed.push_back(record);
    EXPECT_EQ(streamed, trace.records());

    // The materialized reader agrees on the version and the records:
    // the 12-byte VBT1 header really is just magic + count.
    trace::TraceReader materialized(path("old.vbt"));
    EXPECT_EQ(materialized.formatVersion(), 1u);
    std::vector<trace::BranchRecord> loaded;
    while (materialized.next(record))
        loaded.push_back(record);
    EXPECT_EQ(loaded, trace.records());
}

TEST_F(IngestHarness, StreamingRejectsTruncationAtOpen)
{
    trace::saveTrace(makeTrace(5, 100), path("cut.vbt"));
    fs::resize_file(path("cut.vbt"), fs::file_size(path("cut.vbt")) - 9);
    EXPECT_THROW(trace::StreamingTraceReader reader(path("cut.vbt")),
                 std::runtime_error);
}

TEST_F(IngestHarness, StreamingDetectsBitFlipViaChecksum)
{
    trace::saveTrace(makeTrace(5, 200), path("flip.vbt"));
    // Somewhere inside a pc field: record validation cannot see it,
    // only the stream checksum can.
    flipBit(path("flip.vbt"), 20 + 18 * 100 + 5);

    trace::StreamingTraceReader reader(path("flip.vbt"), 16);
    trace::BranchRecord record;
    EXPECT_THROW(
        {
            while (reader.next(record)) {
            }
        },
        std::runtime_error);
}

// --- content hashing --------------------------------------------------

TEST_F(IngestHarness, ContentHashIsStableAndSensitive)
{
    trace::saveTrace(makeTrace(9, 500), path("a.vbt"));
    const std::string first = trace::hashTraceFile(path("a.vbt"));
    EXPECT_EQ(first.size(), 32u);
    EXPECT_EQ(first.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    EXPECT_EQ(trace::hashTraceFile(path("a.vbt")), first);

    // A renamed copy hashes identically; a one-bit change does not.
    fs::copy_file(path("a.vbt"), path("b.vbt"));
    EXPECT_EQ(trace::hashTraceFile(path("b.vbt")), first);
    flipBit(path("b.vbt"), 100);
    EXPECT_NE(trace::hashTraceFile(path("b.vbt")), first);
}

// --- trace fault injection -------------------------------------------

TEST_F(IngestHarness, EveryTraceFaultClassFiresUnderFixedSeed)
{
    trace::saveTrace(makeTrace(13, 4000), path("victim.vbt"));
    const std::uint64_t full_size = fs::file_size(path("victim.vbt"));

    trace::FaultPlan plan;
    plan.seed = 42;
    plan.transientOpens = 2;
    plan.transientReads = 2;
    plan.shortReadProbability = 0.5;
    plan.bitFlipProbability = 0.5;
    plan.truncateAt = full_size - 1000;
    trace::FaultInjector injector(plan);
    const trace::FileOpener opener = injector.opener();

    // Drain the file through the injector with dumb retries, small
    // reads so the probabilistic faults get many draws.
    std::unique_ptr<trace::ByteFile> file;
    for (;;) {
        try {
            file = opener(path("victim.vbt"));
            break;
        } catch (const util::TransientError &) {
        }
    }
    std::uint8_t buffer[64];
    std::uint64_t drained = 0;
    for (;;) {
        std::size_t got = 0;
        try {
            got = file->read(buffer, sizeof(buffer));
        } catch (const util::TransientError &) {
            continue;
        }
        if (got == 0)
            break;
        drained += got;
    }
    EXPECT_EQ(drained, plan.truncateAt);

    const trace::FaultCounters counters = injector.counters();
    EXPECT_EQ(counters.transientOpens, plan.transientOpens);
    EXPECT_EQ(counters.transientReads, plan.transientReads);
    EXPECT_GT(counters.shortReads, 0u);
    EXPECT_GT(counters.bitFlips, 0u);
    EXPECT_EQ(counters.truncations, 1u);
}

TEST_F(IngestHarness, FaultStreamIsPerPathDeterministic)
{
    trace::saveTrace(makeTrace(17, 1000), path("d.vbt"));

    const auto drain = [&](trace::FaultInjector &injector) {
        const auto opener = injector.opener();
        auto file = opener(path("d.vbt"));
        std::vector<std::uint8_t> bytes;
        std::uint8_t buffer[256];
        for (;;) {
            const std::size_t got = file->read(buffer, sizeof(buffer));
            if (got == 0)
                break;
            bytes.insert(bytes.end(), buffer, buffer + got);
        }
        return bytes;
    };

    trace::FaultPlan plan;
    plan.seed = 7;
    plan.shortReadProbability = 0.3;
    plan.bitFlipProbability = 0.3;
    trace::FaultInjector first(plan);
    trace::FaultInjector second(plan);
    // Same seed, same path, same read sizes -> bitwise-identical
    // corrupted stream, independent of injector instance.
    EXPECT_EQ(drain(first), drain(second));
}

TEST_F(IngestHarness, InjectedTruncationIsCaughtByHeaderCheck)
{
    trace::saveTrace(makeTrace(19, 300), path("t.vbt"));
    trace::FaultPlan plan;
    plan.truncateAt = fs::file_size(path("t.vbt")) / 2;
    trace::FaultInjector injector(plan);
    EXPECT_THROW(trace::StreamingTraceReader reader(
                     injector.opener()(path("t.vbt"))),
                 std::runtime_error);
}

// --- on-disk corpus corruption ---------------------------------------

TEST_F(IngestHarness, FaultyDirIsDeterministicAndCoversAllFaults)
{
    const auto populate = [&](const std::string &sub) {
        fs::create_directories(path(sub));
        for (int i = 0; i < 12; ++i) {
            trace::saveTrace(makeTrace(100 + i, 50),
                             path(sub) + "/t" + std::to_string(i)
                                 + ".vbt");
        }
    };
    populate("one");
    populate("two");

    store::FaultyDir first(path("one"), 99);
    store::FaultyDir second(path("two"), 99);
    const auto applied_one = first.corrupt(0.75, ".vbt");
    const auto applied_two = second.corrupt(0.75, ".vbt");

    ASSERT_EQ(applied_one.size(), applied_two.size());
    ASSERT_FALSE(applied_one.empty());
    bool saw[3] = {false, false, false};
    for (std::size_t i = 0; i < applied_one.size(); ++i) {
        EXPECT_EQ(fs::path(applied_one[i].path).filename(),
                  fs::path(applied_two[i].path).filename());
        EXPECT_EQ(applied_one[i].fault, applied_two[i].fault);
        saw[static_cast<int>(applied_one[i].fault)] = true;
    }
    // Seed 99 over 12 files draws every fault kind at least once.
    EXPECT_TRUE(saw[0]);
    EXPECT_TRUE(saw[1]);
    EXPECT_TRUE(saw[2]);

    // Every corrupted trace now fails loudly somewhere in the
    // pipeline: open, read, or checksum.
    for (const auto &applied : applied_one) {
        EXPECT_THROW(
            {
                trace::StreamingTraceReader reader(applied.path, 8);
                trace::BranchRecord record;
                while (reader.next(record)) {
                }
            },
            std::runtime_error)
            << applied.path << " ("
            << store::FaultyDir::faultName(applied.fault) << ")";
    }
}

// --- lenient text conversion -----------------------------------------

TEST_F(IngestHarness, LenientConvertReportsLineNumbers)
{
    std::istringstream in(
        "# comment\n"
        "cond 1000 1040 T\n"
        "cond 1000 xyz T\n"          // bad hex
        "1004 1044 1\n"              // ChampSim-style reduced form
        "bogus 1000 1040 T\n"        // unknown kind
        "\n"
        "ijump 2000 3000 T\n"
        "cond 1008\n"                // too few fields
        "ret 4000 1008 N\n");        // non-conditional not-taken

    trace::ConvertReport report;
    const auto trace = trace::readTextTraceLenient(in, report);
    EXPECT_EQ(report.imported, 3u);
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(report.skipped, 4u);
    ASSERT_EQ(report.diagnostics.size(), 4u);
    EXPECT_NE(report.diagnostics[0].find("line 3"), std::string::npos);
    EXPECT_NE(report.diagnostics[1].find("line 5"), std::string::npos);
    EXPECT_NE(report.diagnostics[2].find("line 8"), std::string::npos);
    EXPECT_NE(report.diagnostics[3].find("line 9"), std::string::npos);

    EXPECT_EQ(trace.records()[1].kind, trace::BranchKind::Conditional);
    EXPECT_EQ(trace.records()[1].pc, 0x1004u);
    EXPECT_TRUE(trace.records()[1].taken);
}

TEST_F(IngestHarness, LenientConvertCapsDiagnostics)
{
    std::ostringstream text;
    for (int i = 0; i < 50; ++i)
        text << "garbage line\n";
    std::istringstream in(text.str());
    trace::ConvertReport report;
    trace::readTextTraceLenient(in, report);
    EXPECT_EQ(report.skipped, 50u);
    EXPECT_EQ(report.diagnostics.size(),
              trace::ConvertReport::maxDiagnostics);
}

// --- checkpoint journal ----------------------------------------------

TEST_F(IngestHarness, CheckpointJournalRoundTripsAcrossReopen)
{
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    {
        store::CheckpointJournal journal(path("ck"));
        EXPECT_EQ(journal.resumedEntries(), 0u);
        journal.record("cell/a", payload);
        journal.record("cell/empty", {});
        // Completed cells are immutable.
        journal.record("cell/a", {9, 9, 9});
    }
    store::CheckpointJournal journal(path("ck"));
    EXPECT_EQ(journal.resumedEntries(), 2u);
    ASSERT_TRUE(journal.lookup("cell/a").has_value());
    EXPECT_EQ(*journal.lookup("cell/a"), payload);
    ASSERT_TRUE(journal.lookup("cell/empty").has_value());
    EXPECT_TRUE(journal.lookup("cell/empty")->empty());
    EXPECT_FALSE(journal.lookup("cell/b").has_value());
}

TEST_F(IngestHarness, CheckpointJournalDropsTornTail)
{
    {
        store::CheckpointJournal journal(path("ck"));
        journal.record("cell/a", {1, 2, 3});
        journal.record("cell/b", {4, 5, 6});
    }
    // Simulate a kill mid-append: half an entry of garbage at the end.
    {
        std::ofstream out(path("ck"),
                          std::ios::binary | std::ios::app);
        const char garbage[] = {7, 0, 0, 0, 3, 0};
        out.write(garbage, sizeof(garbage));
    }
    const auto before = fs::file_size(path("ck"));
    store::CheckpointJournal journal(path("ck"));
    EXPECT_EQ(journal.resumedEntries(), 2u);
    EXPECT_TRUE(journal.lookup("cell/a").has_value());
    EXPECT_TRUE(journal.lookup("cell/b").has_value());
    // The torn bytes were truncated away so appends start clean.
    EXPECT_LT(fs::file_size(path("ck")), before);
    journal.record("cell/c", {7});
    EXPECT_EQ(journal.entries(), 3u);
}

TEST_F(IngestHarness, CheckpointJournalDropsCorruptLastEntry)
{
    {
        store::CheckpointJournal journal(path("ck"));
        journal.record("cell/a", {1, 2, 3});
        journal.record("cell/b", {4, 5, 6});
    }
    // Flip a bit inside the final entry's payload: its trailer
    // checksum no longer matches, so only that entry is dropped.
    flipBit(path("ck"), fs::file_size(path("ck")) - 10);
    store::CheckpointJournal journal(path("ck"));
    EXPECT_EQ(journal.resumedEntries(), 1u);
    EXPECT_TRUE(journal.lookup("cell/a").has_value());
    EXPECT_FALSE(journal.lookup("cell/b").has_value());
}

TEST_F(IngestHarness, CheckpointJournalRejectsForeignFile)
{
    {
        std::ofstream out(path("ck"), std::ios::binary);
        out << "definitely not a journal";
    }
    EXPECT_THROW(store::CheckpointJournal journal(path("ck")),
                 std::runtime_error);
}

// --- suite runner ----------------------------------------------------

/** A corpus with good, corrupt, and empty members. */
class SuiteHarness : public IngestHarness
{
  protected:
    void SetUp() override
    {
        IngestHarness::SetUp();
        corpus_ = path("corpus");
        fs::create_directories(corpus_);
        trace::saveTrace(makeTrace(1, 3000), corpus_ + "/alpha.vbt");
        trace::saveTrace(makeTrace(2, 3000), corpus_ + "/beta.vbt");
        trace::saveTrace(makeTrace(3, 3000), corpus_ + "/gamma.vbt");
        // Delta carries a bit flip inside a record: readable header,
        // checksum failure once the stream is consumed -> quarantined.
        trace::saveTrace(makeTrace(4, 3000), corpus_ + "/delta.vbt");
        flipBit(corpus_ + "/delta.vbt", 20 + 18 * 1000 + 3);
        // Epsilon is valid but empty -> skipped (no usable branches).
        trace::saveTrace(trace::VectorTraceSource{},
                         corpus_ + "/epsilon.vbt");
    }

    sim::TraceSuiteOptions baseOptions() const
    {
        sim::TraceSuiteOptions options;
        options.directory = corpus_;
        options.bytes = 1024;
        options.jobs = 1;
        options.backoffBaseMs = 0;
        options.sleeper = [](unsigned) {};
        return options;
    }

    static std::string render(const sim::SuiteReport &report)
    {
        std::ostringstream out;
        report.print(out);
        return out.str();
    }

    std::string corpus_;
};

TEST_F(SuiteHarness, QuarantinesBadTracesAndContinues)
{
    sim::TraceSuiteRunner runner(baseOptions());
    const sim::SuiteReport report = runner.run();

    ASSERT_EQ(report.traces.size(), 5u);
    EXPECT_EQ(report.okCount(), 3u);
    EXPECT_EQ(report.quarantinedCount(), 1u);
    EXPECT_EQ(report.skippedCount(), 1u);
    EXPECT_FALSE(report.allFailed());

    // Sorted-name order, statuses attached to the right traces.
    EXPECT_EQ(report.traces[0].name, "alpha.vbt");
    EXPECT_EQ(report.traces[0].status, sim::TraceStatus::Ok);
    ASSERT_TRUE(report.traces[0].conditional.has_value());
    ASSERT_TRUE(report.traces[0].indirect.has_value());
    EXPECT_EQ(report.traces[1].name, "beta.vbt");
    EXPECT_EQ(report.traces[2].name, "delta.vbt");
    EXPECT_EQ(report.traces[2].status, sim::TraceStatus::Quarantined);
    EXPECT_FALSE(report.traces[2].cause.empty());
    EXPECT_EQ(report.traces[3].name, "epsilon.vbt");
    EXPECT_EQ(report.traces[3].status, sim::TraceStatus::Skipped);
    EXPECT_EQ(report.traces[4].name, "gamma.vbt");

    EXPECT_GT(report.globalConditionalLength, 0u);
    EXPECT_GT(report.globalIndirectLength, 0u);
}

TEST_F(SuiteHarness, ReportIsIdenticalAcrossJobCounts)
{
    sim::TraceSuiteRunner serial(baseOptions());
    auto parallel_options = baseOptions();
    parallel_options.jobs = 4;
    sim::TraceSuiteRunner parallel(std::move(parallel_options));
    EXPECT_EQ(render(serial.run()), render(parallel.run()));
}

TEST_F(SuiteHarness, TransientFaultsAreRetriedToSuccess)
{
    // One failed open plus one failed read per path: three attempts
    // suffice, within the default budget of four.
    trace::FaultPlan plan;
    plan.transientOpens = 1;
    plan.transientReads = 1;
    trace::FaultInjector injector(plan);

    auto options = baseOptions();
    options.opener = injector.opener();
    std::uint64_t naps = 0;
    options.sleeper = [&naps](unsigned) { ++naps; };
    sim::TraceSuiteRunner faulty(std::move(options));
    const std::string faulty_report = render(faulty.run());

    EXPECT_GT(naps, 0u);
    EXPECT_GT(injector.counters().transientOpens, 0u);

    // Transient faults change nothing about the final report.
    sim::TraceSuiteRunner clean(baseOptions());
    EXPECT_EQ(faulty_report, render(clean.run()));
}

TEST_F(SuiteHarness, PersistentTransientFaultsQuarantine)
{
    trace::FaultPlan plan;
    plan.transientOpens = 1000; // never succeeds within the budget
    trace::FaultInjector injector(plan);

    auto options = baseOptions();
    options.opener = injector.opener();
    options.maxAttempts = 3;
    sim::TraceSuiteRunner runner(std::move(options));
    const sim::SuiteReport report = runner.run();

    EXPECT_EQ(report.okCount(), 0u);
    EXPECT_TRUE(report.allFailed());
    for (const auto &outcome : report.traces) {
        EXPECT_EQ(outcome.status, sim::TraceStatus::Quarantined);
        EXPECT_NE(outcome.cause.find("transient"), std::string::npos);
        EXPECT_NE(outcome.cause.find("3 attempts"), std::string::npos);
    }
}

TEST_F(SuiteHarness, CheckpointResumeReproducesReportByteForByte)
{
    auto uninterrupted = baseOptions();
    const std::string reference =
        render(sim::TraceSuiteRunner(std::move(uninterrupted)).run());

    // Full run with a checkpoint, then a resumed rerun: everything is
    // served from the journal and the report matches byte for byte.
    auto first = baseOptions();
    first.checkpoint = path("ck");
    EXPECT_EQ(render(sim::TraceSuiteRunner(std::move(first)).run()),
              reference);
    const auto journal_size = fs::file_size(path("ck"));

    auto resumed = baseOptions();
    resumed.checkpoint = path("ck");
    const sim::SuiteReport resumed_report =
        sim::TraceSuiteRunner(std::move(resumed)).run();
    EXPECT_GT(resumed_report.resumedCells, 0u);
    EXPECT_EQ(render(resumed_report), reference);
    // The rerun recorded nothing new.
    EXPECT_EQ(fs::file_size(path("ck")), journal_size);

    // A kill mid-run leaves a partial (possibly torn) journal; resume
    // from a truncated copy still converges to the same report.
    fs::copy_file(path("ck"), path("ck_torn"));
    fs::resize_file(path("ck_torn"), journal_size / 2);
    auto torn = baseOptions();
    torn.checkpoint = path("ck_torn");
    EXPECT_EQ(render(sim::TraceSuiteRunner(std::move(torn)).run()),
              reference);
}

TEST_F(IngestHarness, SuiteWithNoUsableTracesFails)
{
    fs::create_directories(path("empty_corpus"));
    trace::saveTrace(makeTrace(1, 50), path("empty_corpus/only.vbt"));
    fs::resize_file(path("empty_corpus/only.vbt"), 30);

    sim::TraceSuiteOptions options;
    options.directory = path("empty_corpus");
    options.bytes = 1024;
    options.sleeper = [](unsigned) {};
    sim::TraceSuiteRunner runner(std::move(options));
    const sim::SuiteReport report = runner.run();
    EXPECT_TRUE(report.allFailed());
    ASSERT_EQ(report.traces.size(), 1u);
    EXPECT_EQ(report.traces[0].status, sim::TraceStatus::Quarantined);
}

} // anonymous namespace
