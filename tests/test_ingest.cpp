/**
 * @file
 * Tests for the hardened external-trace ingestion pipeline: the
 * bounded-memory streaming reader, content hashing, the deterministic
 * fault-injection harnesses (and that every fault class actually
 * fires), the lenient text converter, the checkpoint journal, and the
 * suite runner's retry/quarantine/resume behavior — including that a
 * resumed run's report is byte-identical to an uninterrupted one, and
 * that profile/test pairing (manifest and name convention) yields
 * honest train-vs-test numbers instead of self-evaluation.
 */

#include <sys/stat.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/suite_runner.h"
#include "store/artifact_store.h"
#include "store/checkpoint.h"
#include "store/fault_injection.h"
#include "trace/byte_file.h"
#include "trace/content_hash.h"
#include "trace/fault_injection.h"
#include "trace/mmap_file.h"
#include "trace/prefetch.h"
#include "trace/streaming.h"
#include "trace/text_io.h"
#include "trace/trace_io.h"
#include "util/cancel.h"
#include "util/checksum.h"
#include "util/logging.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;
using namespace vlp;

/** A fresh scratch directory per test, removed on teardown. */
class IngestHarness : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        directory_ = testing::TempDir() + "/vlpsim_ingest_"
            + ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        fs::remove_all(directory_);
        fs::create_directories(directory_);
    }

    void TearDown() override { fs::remove_all(directory_); }

    std::string path(const std::string &name) const
    {
        return directory_ + "/" + name;
    }

    std::string directory_;
};

/**
 * A deterministic mixed trace: a conditional working set with
 * path-correlated outcomes plus enough indirect jumps to clear the
 * suite runner's noise threshold.
 */
trace::VectorTraceSource
makeTrace(std::uint64_t seed, std::size_t records)
{
    util::Rng rng(seed);
    trace::VectorTraceSource source;
    for (std::size_t i = 0; i < records; ++i) {
        trace::BranchRecord record;
        if (rng.nextBool(0.6)) {
            record.kind = trace::BranchKind::Conditional;
            record.pc = 0x1000 + 16 * rng.nextBelow(32);
            record.taken = ((record.pc >> 4) + i / 7) % 3 != 0;
            record.nextPc =
                record.taken ? record.pc + 64 : record.pc + 4;
        } else {
            record.kind = trace::BranchKind::IndirectJump;
            record.pc = 0x8000 + 16 * rng.nextBelow(8);
            record.taken = true;
            record.nextPc = 0x9000 + 64 * ((record.pc >> 4) % 4);
        }
        source.append(record);
    }
    return source;
}

/** Flip one bit at @p offset of the file at @p path. */
void
flipBit(const std::string &path, std::uint64_t offset)
{
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(static_cast<std::streamoff>(offset));
    byte = static_cast<char>(byte ^ 0x10);
    file.write(&byte, 1);
}

// --- streaming reader -------------------------------------------------

TEST_F(IngestHarness, StreamingMatchesMaterializedReader)
{
    const auto trace = makeTrace(7, 1000);
    trace::saveTrace(trace, path("t.vbt"));

    // A deliberately tiny chunk so refill() runs many times.
    trace::StreamingTraceReader reader(path("t.vbt"), 7);
    EXPECT_EQ(reader.count(), 1000u);
    EXPECT_EQ(reader.formatVersion(), 2u);

    trace::BranchRecord record;
    std::vector<trace::BranchRecord> streamed;
    while (reader.next(record))
        streamed.push_back(record);
    EXPECT_EQ(streamed, trace.records());

    // reset() replays identically.
    reader.reset();
    std::size_t replayed = 0;
    while (reader.next(record)) {
        EXPECT_EQ(record, trace.records()[replayed]);
        ++replayed;
    }
    EXPECT_EQ(replayed, trace.records().size());
}

TEST_F(IngestHarness, StreamingHoldsPeakBufferUnderCap)
{
    trace::saveTrace(makeTrace(11, 20000), path("big.vbt"));

    constexpr std::size_t chunk = 64;
    trace::StreamingTraceReader reader(path("big.vbt"), chunk);
    trace::BranchRecord record;
    std::uint64_t read = 0;
    while (reader.next(record))
        ++read;
    EXPECT_EQ(read, 20000u);
    // 18 bytes per encoded record; the cap is independent of the
    // 20000-record file size.
    EXPECT_LE(reader.peakBufferBytes(), chunk * 18);
    EXPECT_GT(reader.peakBufferBytes(), 0u);
}

TEST_F(IngestHarness, StreamingReadsHandcraftedVbt1)
{
    // VBT1: magic + count, no checksum field, then 18-byte records.
    const auto trace = makeTrace(3, 5);
    {
        std::ofstream out(path("old.vbt"), std::ios::binary);
        out.write("VBT1", 4);
        const std::uint64_t count = trace.size();
        out.write(reinterpret_cast<const char *>(&count), 8);
        for (const trace::BranchRecord &record : trace.records()) {
            const std::uint8_t kind =
                static_cast<std::uint8_t>(record.kind);
            const std::uint8_t taken = record.taken ? 1 : 0;
            out.write(reinterpret_cast<const char *>(&kind), 1);
            out.write(reinterpret_cast<const char *>(&taken), 1);
            out.write(reinterpret_cast<const char *>(&record.pc), 8);
            out.write(reinterpret_cast<const char *>(&record.nextPc),
                      8);
        }
    }

    trace::StreamingTraceReader streaming(path("old.vbt"), 2);
    EXPECT_EQ(streaming.formatVersion(), 1u);
    trace::BranchRecord record;
    std::vector<trace::BranchRecord> streamed;
    while (streaming.next(record))
        streamed.push_back(record);
    EXPECT_EQ(streamed, trace.records());

    // The materialized reader agrees on the version and the records:
    // the 12-byte VBT1 header really is just magic + count.
    trace::TraceReader materialized(path("old.vbt"));
    EXPECT_EQ(materialized.formatVersion(), 1u);
    std::vector<trace::BranchRecord> loaded;
    while (materialized.next(record))
        loaded.push_back(record);
    EXPECT_EQ(loaded, trace.records());
}

TEST_F(IngestHarness, StreamingRejectsTruncationAtOpen)
{
    trace::saveTrace(makeTrace(5, 100), path("cut.vbt"));
    fs::resize_file(path("cut.vbt"), fs::file_size(path("cut.vbt")) - 9);
    EXPECT_THROW(trace::StreamingTraceReader reader(path("cut.vbt")),
                 std::runtime_error);
}

TEST_F(IngestHarness, StreamingDetectsBitFlipViaChecksum)
{
    trace::saveTrace(makeTrace(5, 200), path("flip.vbt"));
    // Somewhere inside a pc field: record validation cannot see it,
    // only the stream checksum can.
    flipBit(path("flip.vbt"), 20 + 18 * 100 + 5);

    trace::StreamingTraceReader reader(path("flip.vbt"), 16);
    trace::BranchRecord record;
    EXPECT_THROW(
        {
            while (reader.next(record)) {
            }
        },
        std::runtime_error);
}

// --- content hashing --------------------------------------------------

TEST_F(IngestHarness, ContentHashIsStableAndSensitive)
{
    trace::saveTrace(makeTrace(9, 500), path("a.vbt"));
    const std::string first = trace::hashTraceFile(path("a.vbt"));
    EXPECT_EQ(first.size(), 32u);
    EXPECT_EQ(first.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    EXPECT_EQ(trace::hashTraceFile(path("a.vbt")), first);

    // A renamed copy hashes identically; a one-bit change does not.
    fs::copy_file(path("a.vbt"), path("b.vbt"));
    EXPECT_EQ(trace::hashTraceFile(path("b.vbt")), first);
    flipBit(path("b.vbt"), 100);
    EXPECT_NE(trace::hashTraceFile(path("b.vbt")), first);
}

// --- trace fault injection -------------------------------------------

TEST_F(IngestHarness, EveryTraceFaultClassFiresUnderFixedSeed)
{
    trace::saveTrace(makeTrace(13, 4000), path("victim.vbt"));
    const std::uint64_t full_size = fs::file_size(path("victim.vbt"));

    trace::FaultPlan plan;
    plan.seed = 42;
    plan.transientOpens = 2;
    plan.transientReads = 2;
    plan.shortReadProbability = 0.5;
    plan.bitFlipProbability = 0.5;
    plan.truncateAt = full_size - 1000;
    trace::FaultInjector injector(plan);
    const trace::FileOpener opener = injector.opener();

    // Drain the file through the injector with dumb retries, small
    // reads so the probabilistic faults get many draws.
    std::unique_ptr<trace::ByteFile> file;
    for (;;) {
        try {
            file = opener(path("victim.vbt"));
            break;
        } catch (const util::TransientError &) {
        }
    }
    std::uint8_t buffer[64];
    std::uint64_t drained = 0;
    for (;;) {
        std::size_t got = 0;
        try {
            got = file->read(buffer, sizeof(buffer));
        } catch (const util::TransientError &) {
            continue;
        }
        if (got == 0)
            break;
        drained += got;
    }
    EXPECT_EQ(drained, plan.truncateAt);

    const trace::FaultCounters counters = injector.counters();
    EXPECT_EQ(counters.transientOpens, plan.transientOpens);
    EXPECT_EQ(counters.transientReads, plan.transientReads);
    EXPECT_GT(counters.shortReads, 0u);
    EXPECT_GT(counters.bitFlips, 0u);
    EXPECT_EQ(counters.truncations, 1u);
}

TEST_F(IngestHarness, FaultStreamIsPerPathDeterministic)
{
    trace::saveTrace(makeTrace(17, 1000), path("d.vbt"));

    const auto drain = [&](trace::FaultInjector &injector) {
        const auto opener = injector.opener();
        auto file = opener(path("d.vbt"));
        std::vector<std::uint8_t> bytes;
        std::uint8_t buffer[256];
        for (;;) {
            const std::size_t got = file->read(buffer, sizeof(buffer));
            if (got == 0)
                break;
            bytes.insert(bytes.end(), buffer, buffer + got);
        }
        return bytes;
    };

    trace::FaultPlan plan;
    plan.seed = 7;
    plan.shortReadProbability = 0.3;
    plan.bitFlipProbability = 0.3;
    trace::FaultInjector first(plan);
    trace::FaultInjector second(plan);
    // Same seed, same path, same read sizes -> bitwise-identical
    // corrupted stream, independent of injector instance.
    EXPECT_EQ(drain(first), drain(second));
}

TEST_F(IngestHarness, InjectedTruncationIsCaughtByHeaderCheck)
{
    trace::saveTrace(makeTrace(19, 300), path("t.vbt"));
    trace::FaultPlan plan;
    plan.truncateAt = fs::file_size(path("t.vbt")) / 2;
    trace::FaultInjector injector(plan);
    EXPECT_THROW(trace::StreamingTraceReader reader(
                     injector.opener()(path("t.vbt"))),
                 std::runtime_error);
}

TEST_F(IngestHarness, ServedViewBitFlipIsCaughtByChecksum)
{
    trace::saveTrace(makeTrace(23, 2000), path("v.vbt"));

    // With views served and every served view carrying a flipped bit,
    // the zero-copy decode path must fail the stream checksum — the
    // same guarantee the read() path already proves.
    trace::FaultPlan plan;
    plan.seed = 5;
    plan.serveViews = true;
    plan.viewBitFlipProbability = 1.0;
    trace::FaultInjector injector(plan);

    trace::StreamingTraceReader reader(
        injector.opener()(path("v.vbt")), 64);
    trace::BranchRecord record;
    EXPECT_THROW(
        {
            while (reader.next(record)) {
            }
        },
        std::runtime_error);
    EXPECT_GT(injector.counters().viewBitFlips, 0u);

    // The flip lived in the injector's buffer, never in the file:
    // a clean open replays the trace intact.
    trace::StreamingTraceReader clean(path("v.vbt"), 64);
    std::size_t records = 0;
    while (clean.next(record))
        ++records;
    EXPECT_EQ(records, 2000u);
}

TEST_F(IngestHarness, RefusedViewsFallBackToBufferedReads)
{
    trace::saveTrace(makeTrace(29, 1500), path("r.vbt"));

    // Every view refused mid-stream: the reader must silently fall
    // back to read() and still decode the identical record sequence.
    trace::FaultPlan plan;
    plan.seed = 6;
    plan.serveViews = true;
    plan.shortViewProbability = 1.0;
    trace::FaultInjector injector(plan);

    trace::StreamingTraceReader faulty(
        injector.opener()(path("r.vbt")), 64);
    trace::StreamingTraceReader clean(path("r.vbt"), 64);
    trace::BranchRecord got, want;
    for (;;) {
        const bool more = faulty.next(got);
        ASSERT_EQ(more, clean.next(want));
        if (!more)
            break;
        ASSERT_EQ(got, want);
    }
    EXPECT_GT(injector.counters().shortViews, 0u);
}

// --- on-disk corpus corruption ---------------------------------------

TEST_F(IngestHarness, FaultyDirIsDeterministicAndCoversAllFaults)
{
    const auto populate = [&](const std::string &sub) {
        fs::create_directories(path(sub));
        for (int i = 0; i < 12; ++i) {
            trace::saveTrace(makeTrace(100 + i, 50),
                             path(sub) + "/t" + std::to_string(i)
                                 + ".vbt");
        }
    };
    populate("one");
    populate("two");

    store::FaultyDir first(path("one"), 99);
    store::FaultyDir second(path("two"), 99);
    const auto applied_one = first.corrupt(0.75, ".vbt");
    const auto applied_two = second.corrupt(0.75, ".vbt");

    ASSERT_EQ(applied_one.size(), applied_two.size());
    ASSERT_FALSE(applied_one.empty());
    bool saw[3] = {false, false, false};
    for (std::size_t i = 0; i < applied_one.size(); ++i) {
        EXPECT_EQ(fs::path(applied_one[i].path).filename(),
                  fs::path(applied_two[i].path).filename());
        EXPECT_EQ(applied_one[i].fault, applied_two[i].fault);
        saw[static_cast<int>(applied_one[i].fault)] = true;
    }
    // Seed 99 over 12 files draws every fault kind at least once.
    EXPECT_TRUE(saw[0]);
    EXPECT_TRUE(saw[1]);
    EXPECT_TRUE(saw[2]);

    // Every corrupted trace now fails loudly somewhere in the
    // pipeline: open, read, or checksum.
    for (const auto &applied : applied_one) {
        EXPECT_THROW(
            {
                trace::StreamingTraceReader reader(applied.path, 8);
                trace::BranchRecord record;
                while (reader.next(record)) {
                }
            },
            std::runtime_error)
            << applied.path << " ("
            << store::FaultyDir::faultName(applied.fault) << ")";
    }
}

// --- lenient text conversion -----------------------------------------

TEST_F(IngestHarness, LenientConvertReportsLineNumbers)
{
    std::istringstream in(
        "# comment\n"
        "cond 1000 1040 T\n"
        "cond 1000 xyz T\n"          // bad hex
        "1004 1044 1\n"              // ChampSim-style reduced form
        "bogus 1000 1040 T\n"        // unknown kind
        "\n"
        "ijump 2000 3000 T\n"
        "cond 1008\n"                // too few fields
        "ret 4000 1008 N\n");        // non-conditional not-taken

    trace::ConvertReport report;
    const auto trace = trace::readTextTraceLenient(in, report);
    EXPECT_EQ(report.imported, 3u);
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(report.skipped, 4u);
    ASSERT_EQ(report.diagnostics.size(), 4u);
    EXPECT_NE(report.diagnostics[0].find("line 3"), std::string::npos);
    EXPECT_NE(report.diagnostics[1].find("line 5"), std::string::npos);
    EXPECT_NE(report.diagnostics[2].find("line 8"), std::string::npos);
    EXPECT_NE(report.diagnostics[3].find("line 9"), std::string::npos);

    EXPECT_EQ(trace.records()[1].kind, trace::BranchKind::Conditional);
    EXPECT_EQ(trace.records()[1].pc, 0x1004u);
    EXPECT_TRUE(trace.records()[1].taken);
}

TEST_F(IngestHarness, LenientConvertCapsDiagnostics)
{
    std::ostringstream text;
    for (int i = 0; i < 50; ++i)
        text << "garbage line\n";
    std::istringstream in(text.str());
    trace::ConvertReport report;
    trace::readTextTraceLenient(in, report);
    EXPECT_EQ(report.skipped, 50u);
    EXPECT_EQ(report.diagnostics.size(),
              trace::ConvertReport::maxDiagnostics);
}

// --- checkpoint journal ----------------------------------------------

TEST_F(IngestHarness, CheckpointJournalRoundTripsAcrossReopen)
{
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    {
        store::CheckpointJournal journal(path("ck"));
        EXPECT_EQ(journal.resumedEntries(), 0u);
        journal.record("cell/a", payload);
        journal.record("cell/empty", {});
        // Completed cells are immutable.
        journal.record("cell/a", {9, 9, 9});
    }
    store::CheckpointJournal journal(path("ck"));
    EXPECT_EQ(journal.resumedEntries(), 2u);
    ASSERT_TRUE(journal.lookup("cell/a").has_value());
    EXPECT_EQ(*journal.lookup("cell/a"), payload);
    ASSERT_TRUE(journal.lookup("cell/empty").has_value());
    EXPECT_TRUE(journal.lookup("cell/empty")->empty());
    EXPECT_FALSE(journal.lookup("cell/b").has_value());
}

TEST_F(IngestHarness, CheckpointJournalDropsTornTail)
{
    {
        store::CheckpointJournal journal(path("ck"));
        journal.record("cell/a", {1, 2, 3});
        journal.record("cell/b", {4, 5, 6});
    }
    // Simulate a kill mid-append: half an entry of garbage at the end.
    {
        std::ofstream out(path("ck"),
                          std::ios::binary | std::ios::app);
        const char garbage[] = {7, 0, 0, 0, 3, 0};
        out.write(garbage, sizeof(garbage));
    }
    const auto before = fs::file_size(path("ck"));
    store::CheckpointJournal journal(path("ck"));
    EXPECT_EQ(journal.resumedEntries(), 2u);
    EXPECT_TRUE(journal.lookup("cell/a").has_value());
    EXPECT_TRUE(journal.lookup("cell/b").has_value());
    // The torn bytes were truncated away so appends start clean.
    EXPECT_LT(fs::file_size(path("ck")), before);
    journal.record("cell/c", {7});
    EXPECT_EQ(journal.entries(), 3u);
}

TEST_F(IngestHarness, CheckpointJournalDropsCorruptLastEntry)
{
    {
        store::CheckpointJournal journal(path("ck"));
        journal.record("cell/a", {1, 2, 3});
        journal.record("cell/b", {4, 5, 6});
    }
    // Flip a bit inside the final entry's payload: its trailer
    // checksum no longer matches, so only that entry is dropped.
    flipBit(path("ck"), fs::file_size(path("ck")) - 10);
    store::CheckpointJournal journal(path("ck"));
    EXPECT_EQ(journal.resumedEntries(), 1u);
    EXPECT_TRUE(journal.lookup("cell/a").has_value());
    EXPECT_FALSE(journal.lookup("cell/b").has_value());
}

TEST_F(IngestHarness, CheckpointJournalRejectsForeignFile)
{
    {
        std::ofstream out(path("ck"), std::ios::binary);
        out << "definitely not a journal";
    }
    EXPECT_THROW(store::CheckpointJournal journal(path("ck")),
                 std::runtime_error);
}

// --- suite runner ----------------------------------------------------

/** A corpus with good, corrupt, and empty members. */
class SuiteHarness : public IngestHarness
{
  protected:
    void SetUp() override
    {
        IngestHarness::SetUp();
        corpus_ = path("corpus");
        fs::create_directories(corpus_);
        trace::saveTrace(makeTrace(1, 3000), corpus_ + "/alpha.vbt");
        trace::saveTrace(makeTrace(2, 3000), corpus_ + "/beta.vbt");
        trace::saveTrace(makeTrace(3, 3000), corpus_ + "/gamma.vbt");
        // Delta carries a bit flip inside a record: readable header,
        // checksum failure once the stream is consumed -> quarantined.
        trace::saveTrace(makeTrace(4, 3000), corpus_ + "/delta.vbt");
        flipBit(corpus_ + "/delta.vbt", 20 + 18 * 1000 + 3);
        // Epsilon is valid but empty -> skipped (no usable branches).
        trace::saveTrace(trace::VectorTraceSource{},
                         corpus_ + "/epsilon.vbt");
    }

    sim::TraceSuiteOptions baseOptions() const
    {
        sim::TraceSuiteOptions options;
        options.directory = corpus_;
        options.bytes = 1024;
        options.jobs = 1;
        options.backoffBaseMs = 0;
        options.sleeper = [](unsigned) {};
        return options;
    }

    static std::string render(const sim::SuiteReport &report)
    {
        std::ostringstream out;
        report.print(out);
        return out.str();
    }

    std::string corpus_;
};

TEST_F(SuiteHarness, QuarantinesBadTracesAndContinues)
{
    sim::TraceSuiteRunner runner(baseOptions());
    const sim::SuiteReport report = runner.run();

    ASSERT_EQ(report.traces.size(), 5u);
    EXPECT_EQ(report.okCount(), 3u);
    EXPECT_EQ(report.quarantinedCount(), 1u);
    EXPECT_EQ(report.skippedCount(), 1u);
    EXPECT_FALSE(report.allFailed());

    // Sorted-name order, statuses attached to the right traces.
    EXPECT_EQ(report.traces[0].name, "alpha.vbt");
    EXPECT_EQ(report.traces[0].status, sim::TraceStatus::Ok);
    ASSERT_TRUE(report.traces[0].conditional.has_value());
    ASSERT_TRUE(report.traces[0].indirect.has_value());
    EXPECT_EQ(report.traces[1].name, "beta.vbt");
    EXPECT_EQ(report.traces[2].name, "delta.vbt");
    EXPECT_EQ(report.traces[2].status, sim::TraceStatus::Quarantined);
    EXPECT_FALSE(report.traces[2].cause.empty());
    EXPECT_EQ(report.traces[3].name, "epsilon.vbt");
    EXPECT_EQ(report.traces[3].status, sim::TraceStatus::Skipped);
    EXPECT_EQ(report.traces[4].name, "gamma.vbt");

    EXPECT_GT(report.globalConditionalLength, 0u);
    EXPECT_GT(report.globalIndirectLength, 0u);
}

TEST_F(SuiteHarness, ReportIsIdenticalAcrossJobCounts)
{
    sim::TraceSuiteRunner serial(baseOptions());
    auto parallel_options = baseOptions();
    parallel_options.jobs = 4;
    sim::TraceSuiteRunner parallel(std::move(parallel_options));
    EXPECT_EQ(render(serial.run()), render(parallel.run()));
}

TEST_F(SuiteHarness, TransientFaultsAreRetriedToSuccess)
{
    // One failed open plus one failed read per path: three attempts
    // suffice, within the default budget of four.
    trace::FaultPlan plan;
    plan.transientOpens = 1;
    plan.transientReads = 1;
    trace::FaultInjector injector(plan);

    auto options = baseOptions();
    options.opener = injector.opener();
    std::uint64_t naps = 0;
    options.sleeper = [&naps](unsigned) { ++naps; };
    sim::TraceSuiteRunner faulty(std::move(options));
    const std::string faulty_report = render(faulty.run());

    EXPECT_GT(naps, 0u);
    EXPECT_GT(injector.counters().transientOpens, 0u);

    // Transient faults change nothing about the final report.
    sim::TraceSuiteRunner clean(baseOptions());
    EXPECT_EQ(faulty_report, render(clean.run()));
}

TEST_F(SuiteHarness, PersistentTransientFaultsQuarantine)
{
    trace::FaultPlan plan;
    plan.transientOpens = 1000; // never succeeds within the budget
    trace::FaultInjector injector(plan);

    auto options = baseOptions();
    options.opener = injector.opener();
    options.maxAttempts = 3;
    sim::TraceSuiteRunner runner(std::move(options));
    const sim::SuiteReport report = runner.run();

    EXPECT_EQ(report.okCount(), 0u);
    EXPECT_TRUE(report.allFailed());
    for (const auto &outcome : report.traces) {
        EXPECT_EQ(outcome.status, sim::TraceStatus::Quarantined);
        EXPECT_NE(outcome.cause.find("transient"), std::string::npos);
        EXPECT_NE(outcome.cause.find("3 attempts"), std::string::npos);
    }
}

TEST_F(SuiteHarness, CheckpointResumeReproducesReportByteForByte)
{
    auto uninterrupted = baseOptions();
    const std::string reference =
        render(sim::TraceSuiteRunner(std::move(uninterrupted)).run());

    // Full run with a checkpoint, then a resumed rerun: everything is
    // served from the journal and the report matches byte for byte.
    auto first = baseOptions();
    first.checkpoint = path("ck");
    EXPECT_EQ(render(sim::TraceSuiteRunner(std::move(first)).run()),
              reference);
    const auto journal_size = fs::file_size(path("ck"));

    auto resumed = baseOptions();
    resumed.checkpoint = path("ck");
    const sim::SuiteReport resumed_report =
        sim::TraceSuiteRunner(std::move(resumed)).run();
    EXPECT_GT(resumed_report.resumedCells, 0u);
    EXPECT_EQ(render(resumed_report), reference);
    // The rerun recorded nothing new.
    EXPECT_EQ(fs::file_size(path("ck")), journal_size);

    // A kill mid-run leaves a partial (possibly torn) journal; resume
    // from a truncated copy still converges to the same report.
    fs::copy_file(path("ck"), path("ck_torn"));
    fs::resize_file(path("ck_torn"), journal_size / 2);
    auto torn = baseOptions();
    torn.checkpoint = path("ck_torn");
    EXPECT_EQ(render(sim::TraceSuiteRunner(std::move(torn)).run()),
              reference);
}

TEST_F(IngestHarness, SuiteWithNoUsableTracesFails)
{
    fs::create_directories(path("empty_corpus"));
    trace::saveTrace(makeTrace(1, 50), path("empty_corpus/only.vbt"));
    fs::resize_file(path("empty_corpus/only.vbt"), 30);

    sim::TraceSuiteOptions options;
    options.directory = path("empty_corpus");
    options.bytes = 1024;
    options.sleeper = [](unsigned) {};
    sim::TraceSuiteRunner runner(std::move(options));
    const sim::SuiteReport report = runner.run();
    EXPECT_TRUE(report.allFailed());
    EXPECT_FALSE(report.empty());
    ASSERT_EQ(report.traces.size(), 1u);
    EXPECT_EQ(report.traces[0].status, sim::TraceStatus::Quarantined);
}

TEST_F(IngestHarness, EmptyCorpusIsDistinctFromAllFailed)
{
    fs::create_directories(path("no_traces"));
    sim::TraceSuiteOptions options;
    options.directory = path("no_traces");
    options.bytes = 1024;
    options.sleeper = [](unsigned) {};
    sim::TraceSuiteRunner runner(std::move(options));
    const sim::SuiteReport report = runner.run();
    // "no .vbt traces found" must not read as "every trace failed":
    // the CLI maps empty() to its own diagnostic and exit status.
    EXPECT_TRUE(report.empty());
    EXPECT_FALSE(report.allFailed());
    EXPECT_TRUE(report.traces.empty());
}

// --- profile/test pairing --------------------------------------------

/**
 * A conditional-only trace whose outcomes are either strongly
 * path-correlated (learnable bias) or adversarially random (the
 * opposite). Built on one seed, two traces share the exact branch
 * sequence and differ only in outcome structure — the profile input
 * teaches a bias the test input then contradicts.
 */
trace::VectorTraceSource
makeBiasedTrace(std::uint64_t seed, std::size_t records, bool contrary)
{
    util::Rng rng(seed);
    trace::VectorTraceSource source;
    for (std::size_t i = 0; i < records; ++i) {
        trace::BranchRecord record;
        record.kind = trace::BranchKind::Conditional;
        record.pc = 0x1000 + 16 * rng.nextBelow(16);
        const bool biased = (((record.pc >> 4) ^ (i >> 2)) & 1) != 0;
        record.taken = contrary ? rng.nextBool(0.5) : biased;
        record.nextPc = record.taken ? record.pc + 64 : record.pc + 4;
        source.append(record);
    }
    return source;
}

TEST_F(IngestHarness, PairTracesFollowsNameConvention)
{
    const std::vector<std::pair<std::string, std::string>> discovered =
        {{"gcc.profile.vbt", "/c/gcc.profile.vbt"},
         {"gcc.test.vbt", "/c/gcc.test.vbt"},
         {"lone.test.vbt", "/c/lone.test.vbt"},
         {"plain.vbt", "/c/plain.vbt"}};
    const sim::TracePairing pairing =
        sim::TraceSuiteRunner::pairTraces(discovered, "");

    ASSERT_EQ(pairing.pairs.size(), 2u);
    EXPECT_EQ(pairing.pairs[0].name, "gcc");
    EXPECT_EQ(pairing.pairs[0].profileName, "gcc.profile.vbt");
    EXPECT_EQ(pairing.pairs[0].testName, "gcc.test.vbt");
    EXPECT_FALSE(pairing.pairs[0].selfEval);
    // Unmarked traces fall back to labeled self-evaluation...
    EXPECT_EQ(pairing.pairs[1].name, "plain.vbt");
    EXPECT_TRUE(pairing.pairs[1].selfEval);
    // ...but a convention-marked trace with no mate is never silently
    // self-evaluated.
    ASSERT_EQ(pairing.orphans.size(), 1u);
    EXPECT_EQ(pairing.orphans[0].name, "lone.test.vbt");
    EXPECT_NE(pairing.orphans[0].cause.find("lone.profile.vbt"),
              std::string::npos);
}

TEST_F(IngestHarness, PairTracesFollowsManifestAndReportsOrphans)
{
    const std::string manifest = path("pairs.txt");
    {
        std::ofstream out(manifest);
        out << "# comment line\n"
            << "\n"
            << "zeta b.vbt c.vbt\n"
            << "alpha a.vbt b.vbt\n"
            << "selfy c.vbt c.vbt\n";
    }
    const std::vector<std::pair<std::string, std::string>> discovered =
        {{"a.vbt", "/c/a.vbt"},
         {"b.vbt", "/c/b.vbt"},
         {"c.vbt", "/c/c.vbt"},
         {"unused.vbt", "/c/unused.vbt"}};
    const sim::TracePairing pairing =
        sim::TraceSuiteRunner::pairTraces(discovered, manifest);

    ASSERT_EQ(pairing.pairs.size(), 3u);
    // Sorted by pair name, not manifest order.
    EXPECT_EQ(pairing.pairs[0].name, "alpha");
    EXPECT_EQ(pairing.pairs[0].profileName, "a.vbt");
    EXPECT_EQ(pairing.pairs[0].testName, "b.vbt");
    EXPECT_FALSE(pairing.pairs[0].selfEval);
    EXPECT_EQ(pairing.pairs[1].name, "selfy");
    EXPECT_TRUE(pairing.pairs[1].selfEval);
    EXPECT_EQ(pairing.pairs[2].name, "zeta");
    ASSERT_EQ(pairing.orphans.size(), 1u);
    EXPECT_EQ(pairing.orphans[0].name, "unused.vbt");
    EXPECT_NE(pairing.orphans[0].cause.find("not referenced"),
              std::string::npos);
}

TEST_F(IngestHarness, PairTracesRejectsMalformedManifests)
{
    const std::vector<std::pair<std::string, std::string>> discovered =
        {{"a.vbt", "/c/a.vbt"}};

    {
        std::ofstream out(path("short.txt"));
        out << "pair a.vbt\n"; // missing the test trace field
    }
    EXPECT_THROW(
        sim::TraceSuiteRunner::pairTraces(discovered, path("short.txt")),
        std::runtime_error);

    {
        std::ofstream out(path("dup.txt"));
        out << "pair a.vbt a.vbt\n"
            << "pair a.vbt a.vbt\n";
    }
    EXPECT_THROW(
        sim::TraceSuiteRunner::pairTraces(discovered, path("dup.txt")),
        std::runtime_error);

    EXPECT_THROW(sim::TraceSuiteRunner::pairTraces(
                     discovered, path("does_not_exist.txt")),
                 std::runtime_error);
}

TEST_F(IngestHarness, ManifestNamingMissingTraceQuarantinesThatPair)
{
    fs::create_directories(path("corpus"));
    trace::saveTrace(makeTrace(1, 3000), path("corpus/a.vbt"));
    trace::saveTrace(makeTrace(2, 3000), path("corpus/b.vbt"));
    {
        std::ofstream out(path("corpus/pairs.txt"));
        out << "good a.vbt b.vbt\n"
            << "bad a.vbt ghost.vbt\n";
    }

    sim::TraceSuiteOptions options;
    options.directory = path("corpus");
    options.bytes = 1024;
    options.sleeper = [](unsigned) {};
    sim::TraceSuiteRunner runner(std::move(options));
    const sim::SuiteReport report = runner.run();

    ASSERT_EQ(report.traces.size(), 2u);
    EXPECT_EQ(report.traces[0].name, "bad");
    EXPECT_EQ(report.traces[0].status, sim::TraceStatus::Quarantined);
    EXPECT_NE(report.traces[0].cause.find("ghost.vbt"),
              std::string::npos);
    EXPECT_EQ(report.traces[1].name, "good");
    EXPECT_EQ(report.traces[1].status, sim::TraceStatus::Ok);
    EXPECT_FALSE(report.allFailed());
}

TEST_F(IngestHarness, PairedRunReportsTrainAndTestFromDistinctTraces)
{
    fs::create_directories(path("corpus"));
    // Same branch sequence; the profile input carries a learnable
    // path-correlated bias, the test input contradicts it.
    trace::saveTrace(makeBiasedTrace(21, 6000, false),
                     path("corpus/gcc.profile.vbt"));
    trace::saveTrace(makeBiasedTrace(21, 6000, true),
                     path("corpus/gcc.test.vbt"));

    sim::TraceSuiteOptions options;
    options.directory = path("corpus");
    options.bytes = 1024;
    options.sleeper = [](unsigned) {};
    sim::TraceSuiteRunner runner(std::move(options));
    const sim::SuiteReport report = runner.run();

    ASSERT_EQ(report.traces.size(), 1u);
    const sim::TraceOutcome &pair = report.traces[0];
    EXPECT_EQ(pair.name, "gcc");
    EXPECT_EQ(pair.status, sim::TraceStatus::Ok);
    EXPECT_FALSE(pair.selfEval);
    ASSERT_TRUE(pair.conditionalTrain.has_value());
    ASSERT_TRUE(pair.conditional.has_value());

    // The two sides really came from different traces: branch counts
    // match (same sequence) but the test-side accuracy visibly drops.
    const sim::RateEntry &train =
        pair.conditionalTrain->entry(sim::names::vlp);
    const sim::RateEntry &test = pair.conditional->entry(sim::names::vlp);
    EXPECT_GT(train.branches, 0u);
    EXPECT_GT(test.rate, train.rate);
    ASSERT_TRUE(pair.conditionalDelta().has_value());
    EXPECT_GT(*pair.conditionalDelta(), 1.0);

    // Rendered output labels the pair cross-eval with a delta line.
    std::ostringstream rendered;
    report.print(rendered);
    const std::string text = rendered.str();
    EXPECT_NE(text.find("ok cross-eval"), std::string::npos);
    EXPECT_NE(text.find("| test "), std::string::npos);
    EXPECT_NE(text.find("generalization delta"), std::string::npos);
}

TEST_F(IngestHarness, PairedArtifactsAreCachedUnderProfileHash)
{
    fs::create_directories(path("corpus"));
    trace::saveTrace(makeBiasedTrace(23, 4000, false),
                     path("corpus/app.profile.vbt"));
    trace::saveTrace(makeBiasedTrace(23, 4000, true),
                     path("corpus/app.test.vbt"));

    store::StoreOptions store_options;
    store_options.directory = path("cache");
    const auto store =
        std::make_shared<store::ArtifactStore>(store_options);

    const auto runOnce = [&] {
        sim::TraceSuiteOptions options;
        options.directory = path("corpus");
        options.bytes = 1024;
        options.store = store;
        options.sleeper = [](unsigned) {};
        sim::TraceSuiteRunner runner(std::move(options));
        std::ostringstream out;
        runner.run().print(out);
        return out.str();
    };

    const std::string cold = runOnce();
    const store::StoreCounters after_cold = store->counters();
    EXPECT_GT(after_cold.inserts, 0u);

    // Warm rerun: byte-identical report, everything served from the
    // store (no new inserts), step-1/assignment artifacts keyed by the
    // profile trace's content hash.
    const std::string warm = runOnce();
    EXPECT_EQ(warm, cold);
    const store::StoreCounters after_warm = store->counters();
    EXPECT_EQ(after_warm.inserts, after_cold.inserts);
    EXPECT_GT(after_warm.hits, after_cold.hits);
}

TEST_F(SuiteHarness, PairedReportIsIdenticalAcrossJobCounts)
{
    // A corpus mixing cross-eval pairs, a self-eval fallback, and an
    // orphan, processed at jobs 1 and jobs 4.
    fs::create_directories(path("paired"));
    trace::saveTrace(makeTrace(31, 3000),
                     path("paired/one.profile.vbt"));
    trace::saveTrace(makeTrace(32, 3000), path("paired/one.test.vbt"));
    trace::saveTrace(makeTrace(33, 3000),
                     path("paired/two.profile.vbt"));
    trace::saveTrace(makeTrace(34, 3000), path("paired/two.test.vbt"));
    trace::saveTrace(makeTrace(35, 3000), path("paired/solo.vbt"));
    trace::saveTrace(makeTrace(36, 3000),
                     path("paired/widow.profile.vbt"));

    auto serial_options = baseOptions();
    serial_options.directory = path("paired");
    sim::TraceSuiteRunner serial(std::move(serial_options));
    auto parallel_options = baseOptions();
    parallel_options.directory = path("paired");
    parallel_options.jobs = 4;
    sim::TraceSuiteRunner parallel(std::move(parallel_options));

    const sim::SuiteReport serial_report = serial.run();
    EXPECT_EQ(serial_report.okCount(), 3u);
    EXPECT_EQ(serial_report.crossEvaluatedCount(), 2u);
    EXPECT_EQ(serial_report.orphanedCount(), 1u);
    EXPECT_EQ(render(serial_report), render(parallel.run()));
}

TEST_F(SuiteHarness, PairedCheckpointResumeReproducesReport)
{
    fs::create_directories(path("paired"));
    trace::saveTrace(makeTrace(41, 3000),
                     path("paired/app.profile.vbt"));
    trace::saveTrace(makeTrace(42, 3000), path("paired/app.test.vbt"));
    trace::saveTrace(makeTrace(43, 3000), path("paired/solo.vbt"));

    auto plain = baseOptions();
    plain.directory = path("paired");
    const std::string reference =
        render(sim::TraceSuiteRunner(std::move(plain)).run());

    auto first = baseOptions();
    first.directory = path("paired");
    first.checkpoint = path("ck");
    EXPECT_EQ(render(sim::TraceSuiteRunner(std::move(first)).run()),
              reference);

    // Resume from a half-written journal (a mid-run kill): the report
    // still converges byte for byte.
    fs::copy_file(path("ck"), path("ck_torn"));
    fs::resize_file(path("ck_torn"), fs::file_size(path("ck")) / 2);
    auto torn = baseOptions();
    torn.directory = path("paired");
    torn.checkpoint = path("ck_torn");
    EXPECT_EQ(render(sim::TraceSuiteRunner(std::move(torn)).run()),
              reference);
}

TEST_F(SuiteHarness, ManifestEditBetweenKillAndResumeRecomputes)
{
    fs::create_directories(path("paired"));
    trace::saveTrace(makeTrace(51, 3000), path("paired/a.vbt"));
    trace::saveTrace(makeTrace(52, 3000), path("paired/b.vbt"));
    trace::saveTrace(makeTrace(53, 3000), path("paired/c.vbt"));
    const auto writeManifest = [&](const std::string &test_trace) {
        std::ofstream out(path("manifest.txt"));
        out << "app a.vbt " << test_trace << "\n";
    };

    // Run to completion against b.vbt, journaling every cell.
    writeManifest("b.vbt");
    auto first = baseOptions();
    first.directory = path("paired");
    first.manifest = path("manifest.txt");
    first.checkpoint = path("ck");
    const std::string against_b =
        render(sim::TraceSuiteRunner(std::move(first)).run());

    // Edit the manifest to evaluate against c.vbt and "resume" with
    // the stale journal: cell keys carry the pair identity, so the
    // b.vbt rows cannot be replayed as c.vbt results.
    writeManifest("c.vbt");
    auto resumed = baseOptions();
    resumed.directory = path("paired");
    resumed.manifest = path("manifest.txt");
    resumed.checkpoint = path("ck");
    const std::string resumed_text =
        render(sim::TraceSuiteRunner(std::move(resumed)).run());

    auto fresh = baseOptions();
    fresh.directory = path("paired");
    fresh.manifest = path("manifest.txt");
    const std::string against_c =
        render(sim::TraceSuiteRunner(std::move(fresh)).run());
    EXPECT_EQ(resumed_text, against_c);
    EXPECT_NE(resumed_text, against_b);
}

TEST_F(IngestHarness, CheckpointJournalFromOlderFormatIsRejected)
{
    {
        std::ofstream out(path("ck_v1"), std::ios::binary);
        out.write("VLPCKPT1", 8);
    }
    try {
        store::CheckpointJournal journal(path("ck_v1"));
        FAIL() << "format-1 journal was accepted";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what()).find("older run"),
                  std::string::npos);
    }
}

TEST_F(IngestHarness, BackoffDelayIsClampedForHugeAttemptBudgets)
{
    fs::create_directories(path("corpus"));
    trace::saveTrace(makeTrace(61, 200), path("corpus/t.vbt"));

    // Every open fails transiently, exhausting a 40-attempt budget:
    // before the clamp, attempt 33 shifted a 32-bit base by 32 —
    // undefined behavior that UBSan flags in sanitizer builds.
    trace::FaultPlan plan;
    plan.transientOpens = 1000;
    trace::FaultInjector injector(plan);

    sim::TraceSuiteOptions options;
    options.directory = path("corpus");
    options.bytes = 1024;
    options.opener = injector.opener();
    options.maxAttempts = 40;
    options.backoffBaseMs = 3;
    options.backoffMaxMs = 24;
    std::vector<unsigned> delays;
    options.sleeper = [&delays](unsigned ms) { delays.push_back(ms); };
    sim::TraceSuiteRunner runner(std::move(options));
    const sim::SuiteReport report = runner.run();

    ASSERT_EQ(report.traces.size(), 1u);
    EXPECT_EQ(report.traces[0].status, sim::TraceStatus::Quarantined);
    ASSERT_GE(delays.size(), 39u);
    EXPECT_EQ(delays[0], 3u);
    EXPECT_EQ(delays[1], 6u);
    EXPECT_EQ(delays[2], 12u);
    for (const unsigned delay : delays)
        EXPECT_LE(delay, 24u);
    EXPECT_EQ(delays[38], 24u);
}

TEST_F(IngestHarness, GoldenPairedAsciiReport)
{
    // A hand-built report with fixed counters: locks the exact paired
    // ASCII rendering without depending on simulation numerics.
    sim::SuiteReport suite;
    suite.bytes = 2048;
    suite.globalConditionalLength = 6;
    suite.globalIndirectLength = 0;

    sim::TraceOutcome pair;
    pair.name = "gcc";
    pair.profileName = "gcc.profile.vbt";
    pair.testName = "gcc.test.vbt";
    pair.profileFormatVersion = 2;
    pair.formatVersion = 2;
    pair.profileRecords = 100;
    pair.records = 120;
    pair.conditionalBranches = 69000;
    sim::ComparisonRow train;
    train.benchmark = "gcc.profile.vbt";
    train.entries = {{sim::names::gshare, 69000, 9436, 13.6754},
                     {sim::names::vlp, 69000, 2898, 4.2}};
    sim::ComparisonRow test;
    test.benchmark = "gcc.test.vbt";
    test.entries = {{sim::names::gshare, 69000, 10350, 15.0},
                    {sim::names::vlp, 69000, 4485, 6.5}};
    pair.conditionalTrain = train;
    pair.conditional = test;
    suite.traces.push_back(pair);

    sim::TraceOutcome orphan;
    orphan.name = "lone.test.vbt";
    orphan.status = sim::TraceStatus::Orphaned;
    orphan.cause = "test trace without a matching lone.profile.vbt";
    suite.traces.push_back(orphan);

    std::ostringstream out;
    suite.print(out);
    EXPECT_EQ(
        out.str(),
        "external trace suite\n"
        "table budget: 2048 bytes\n"
        "global conditional path length: 6\n"
        "global indirect path length: n/a\n"
        "pairs: 1 ok (1 cross-eval, 0 self-eval), 0 quarantined, "
        "0 skipped, 1 orphaned\n"
        "\n"
        "gcc: ok cross-eval (profile gcc.profile.vbt: VBT2, 100 "
        "records; test gcc.test.vbt: VBT2, 120 records)\n"
        "  conditional (69000 profiled branches; train vs test)\n"
        "    gshare: train 13.6754% (9436/69000) | test 15.0000% "
        "(10350/69000)\n"
        "    variable length path: train 4.2000% (2898/69000) | test "
        "6.5000% (4485/69000)\n"
        "    generalization delta (variable length path): +2.3000%\n"
        "\n"
        "lone.test.vbt: orphaned (test trace without a matching "
        "lone.profile.vbt)\n");
}

// --- zero-copy fast path ----------------------------------------------

/** All file bytes via read() on @p file. */
std::vector<std::uint8_t>
slurp(trace::ByteFile &file)
{
    std::vector<std::uint8_t> bytes;
    std::uint8_t buffer[4096];
    file.seek(0);
    for (;;) {
        const std::size_t got = file.read(buffer, sizeof(buffer));
        if (got == 0)
            break;
        bytes.insert(bytes.end(), buffer, buffer + got);
    }
    return bytes;
}

/** Drain @p reader into a vector for record-level comparison. */
std::vector<trace::BranchRecord>
drainRecords(trace::TraceSource &reader)
{
    std::vector<trace::BranchRecord> records;
    trace::BranchRecord record;
    while (reader.next(record))
        records.push_back(record);
    return records;
}

/**
 * The content-hash contract, locked as a known answer: the fused
 * ContentHasher kernel, the fused-triple updateWith() kernel, and
 * hashTraceFile() must all reproduce what two *sequential* FNV-1a
 * streams (the pre-fusion implementation) produce.
 */
TEST_F(IngestHarness, FusedHashMatchesSequentialTwoStreamReference)
{
    trace::saveTrace(makeTrace(29, 700), path("h.vbt"));
    std::ifstream in(path("h.vbt"), std::ios::binary);
    std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
    ASSERT_GT(bytes.size(), 100u);

    // Reference: two independent sequential chains, split across
    // deliberately ragged update sizes.
    util::Fnv1a low;
    util::Fnv1a high(util::Fnv1a::offsetBasis
                     ^ trace::ContentHasher::highSeedXor);
    trace::ContentHasher fused;
    trace::ContentHasher fused_triple;
    util::Fnv1a companion;
    util::Fnv1a companion_reference;
    std::size_t offset = 0;
    std::size_t step = 1;
    while (offset < bytes.size()) {
        const std::size_t take =
            std::min(step, bytes.size() - offset);
        low.update(bytes.data() + offset, take);
        high.update(bytes.data() + offset, take);
        fused.update(bytes.data() + offset, take);
        fused_triple.updateWith(bytes.data() + offset, take,
                                companion);
        companion_reference.update(bytes.data() + offset, take);
        offset += take;
        step = step * 3 + 1; // 1, 4, 13, ... exercises odd sizes
    }
    char reference[33];
    std::snprintf(reference, sizeof(reference), "%016llx%016llx",
                  static_cast<unsigned long long>(high.digest()),
                  static_cast<unsigned long long>(low.digest()));

    EXPECT_EQ(fused.digest(), reference);
    EXPECT_EQ(fused_triple.digest(), reference);
    // The companion chain fused into the triple kernel sees exactly
    // the bytes a standalone chain would.
    EXPECT_EQ(companion.digest(), companion_reference.digest());
    // And the public entry points agree, over both backends.
    EXPECT_EQ(trace::hashTraceFile(path("h.vbt")), reference);
    const auto mapped =
        trace::openByteFileFast(path("h.vbt"), trace::ReadMode::Mmap);
    EXPECT_EQ(trace::hashTraceFile(*mapped), reference);
}

TEST_F(IngestHarness, HashingByteFileFrontierNeverDoubleHashes)
{
    trace::saveTrace(makeTrace(31, 400), path("f.vbt"));
    const std::string expected = trace::hashTraceFile(path("f.vbt"));

    trace::HashingByteFile hashing(trace::openByteFile(path("f.vbt")));
    std::uint8_t buffer[1000];
    // Partial sequential read advances the frontier...
    ASSERT_EQ(hashing.read(buffer, 1000), 1000u);
    EXPECT_EQ(hashing.hashedBytes(), 1000u);
    // ...a replay behind the frontier must not re-hash...
    hashing.seek(0);
    ASSERT_EQ(hashing.read(buffer, 500), 500u);
    EXPECT_EQ(hashing.hashedBytes(), 1000u);
    // ...and finish() hashes the tail without disturbing the cursor.
    EXPECT_EQ(hashing.finish(), expected);
    EXPECT_TRUE(hashing.complete());
    ASSERT_EQ(hashing.read(buffer, 500), 500u);
    EXPECT_EQ(hashing.finish(), expected); // idempotent once complete

    // Same digest when the frontier advances through views (mmap).
    trace::HashingByteFile mapped(
        trace::openByteFileFast(path("f.vbt"), trace::ReadMode::Mmap));
    util::Fnv1a companion;
    ASSERT_NE(mapped.viewHashing(0, 64, companion), nullptr);
    EXPECT_EQ(mapped.hashedBytes(), 64u);
    ASSERT_NE(mapped.viewHashing(0, 64, companion), nullptr);
    EXPECT_EQ(mapped.hashedBytes(), 64u); // replayed view, no advance
    EXPECT_EQ(mapped.finish(), expected);
}

TEST_F(IngestHarness, MmapAndStdioBackendsServeIdenticalBytes)
{
    trace::saveTrace(makeTrace(37, 2000), path("b.vbt"));
    const auto stdio_file = trace::openByteFile(path("b.vbt"));
    const auto mapped =
        trace::openByteFileFast(path("b.vbt"), trace::ReadMode::Mmap);
    ASSERT_NE(mapped->view(0, 16), nullptr) << "expected a mapping";
    EXPECT_EQ(slurp(*stdio_file), slurp(*mapped));
    EXPECT_EQ(stdio_file->size(), mapped->size());
}

TEST_F(IngestHarness, MmapWindowRemapsAcrossLargeFiles)
{
    trace::saveTrace(makeTrace(41, 3000), path("w.vbt")); // ~54 KB
    trace::MmapByteFile small_window(path("w.vbt"), 4096);
    const auto stdio_file = trace::openByteFile(path("w.vbt"));
    EXPECT_EQ(slurp(*stdio_file), slurp(small_window));
    EXPECT_GT(small_window.remaps(), 1u);

    // A view wider than the window still succeeds (window grows).
    trace::MmapByteFile wide(path("w.vbt"), 4096);
    EXPECT_NE(wide.view(0, 20000), nullptr);
}

TEST_F(IngestHarness, FifoFallsBackToStdioUnderAutoMode)
{
    const std::string fifo = path("pipe.fifo");
    ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);
    const std::string payload = "fifo bytes reach the reader";
    std::thread writer([&] {
        std::ofstream out(fifo, std::ios::binary);
        out << payload;
    });
    auto file = trace::openByteFileFast(fifo, trace::ReadMode::Auto);
    std::string got(payload.size(), '\0');
    std::size_t filled = 0;
    while (filled < got.size()) {
        const std::size_t n =
            file->read(got.data() + filled, got.size() - filled);
        if (n == 0)
            break;
        filled += n;
    }
    writer.join();
    EXPECT_EQ(got, payload);
    // And asking for mmap explicitly must throw, not fall back
    // silently to a broken mapping.
    EXPECT_THROW(trace::MmapByteFile{fifo}, trace::MmapUnsupported);
}

TEST_F(IngestHarness, StreamBufServesIdenticalTextOverBothBackends)
{
    std::string text;
    for (int i = 0; i < 4000; ++i)
        text += "line " + std::to_string(i) + "\n";
    std::ofstream(path("t.txt"), std::ios::binary) << text;

    for (const trace::ReadMode mode :
         {trace::ReadMode::Stdio, trace::ReadMode::Mmap}) {
        auto file = trace::openByteFileFast(path("t.txt"), mode);
        trace::ByteFileStreamBuf buffer(*file);
        std::istream in(&buffer);
        std::string got{std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>()};
        EXPECT_EQ(got, text) << trace::readModeName(mode);
    }
}

/** Chunk-refill edges, exercised over both backends. */
TEST_F(IngestHarness, RefillEdgesDecodeIdenticallyOnBothBackends)
{
    // 1000 % 7 != 0: the last chunk is ragged. 994 = 7 * 142: the
    // final record lands exactly on a chunk edge. And zero records.
    const struct
    {
        const char *name;
        std::size_t records;
        std::size_t chunk;
    } cases[] = {{"ragged.vbt", 1000, 7},
                 {"edge.vbt", 994, 7},
                 {"empty.vbt", 0, 7}};
    for (const auto &c : cases) {
        const auto trace = makeTrace(43, c.records);
        trace::saveTrace(trace, path(c.name));
        const auto expected = [&] {
            trace::VectorTraceSource replay = trace;
            return drainRecords(replay);
        }();
        for (const trace::ReadMode mode :
             {trace::ReadMode::Stdio, trace::ReadMode::Mmap}) {
            trace::StreamingTraceReader reader(
                trace::openByteFileFast(path(c.name), mode), c.chunk);
            const auto got = drainRecords(reader);
            ASSERT_EQ(got.size(), c.records)
                << c.name << " via " << trace::readModeName(mode);
            for (std::size_t i = 0; i < got.size(); ++i) {
                ASSERT_EQ(got[i].pc, expected[i].pc) << c.name;
                ASSERT_EQ(got[i].taken, expected[i].taken) << c.name;
                ASSERT_EQ(got[i].nextPc, expected[i].nextPc) << c.name;
            }
            // reset() replays cleanly across the same edges.
            trace::BranchRecord record;
            reader.reset();
            std::size_t replayed = 0;
            while (reader.next(record))
                ++replayed;
            EXPECT_EQ(replayed, c.records);
        }
    }
}

TEST_F(IngestHarness, ChecksumFailureDetectedOnBothBackends)
{
    trace::saveTrace(makeTrace(47, 200), path("c.vbt"));
    flipBit(path("c.vbt"), 20 + 18 * 100 + 5);
    for (const trace::ReadMode mode :
         {trace::ReadMode::Stdio, trace::ReadMode::Mmap}) {
        trace::StreamingTraceReader reader(
            trace::openByteFileFast(path("c.vbt"), mode));
        trace::BranchRecord record;
        EXPECT_THROW(
            {
                while (reader.next(record)) {
                }
            },
            std::runtime_error)
            << trace::readModeName(mode);
    }
}

// --- prefetcher -------------------------------------------------------

TEST_F(IngestHarness, PrefetcherDeliversFailuresInBandAndInOrder)
{
    trace::saveTrace(makeTrace(53, 300), path("ok1.vbt"));
    std::ofstream(path("junk.vbt"), std::ios::binary) << "not a trace";
    trace::saveTrace(makeTrace(54, 300), path("ok2.vbt"));

    trace::TracePrefetcher::Options options;
    options.window = 2;
    options.threads = 2;
    options.retry.sleeper = [](unsigned) {};
    trace::TracePrefetcher prefetch(
        {path("ok1.vbt"), path("junk.vbt"), path("ok2.vbt")}, options);

    auto first = prefetch.take(0);
    ASSERT_FALSE(first.error);
    EXPECT_EQ(first.contentHash, trace::hashTraceFile(path("ok1.vbt")));
    EXPECT_EQ(first.records, 300u);
    first.session->reset();
    EXPECT_EQ(drainRecords(*first.session).size(), 300u);

    auto second = prefetch.take(1);
    ASSERT_TRUE(second.error);
    EXPECT_FALSE(second.session);
    EXPECT_THROW(std::rethrow_exception(second.error),
                 std::runtime_error);

    auto third = prefetch.take(2);
    ASSERT_FALSE(third.error);
    EXPECT_EQ(third.records, 300u);
}

TEST_F(IngestHarness, PrefetcherTakeUnblocksOnCancellation)
{
    trace::saveTrace(makeTrace(59, 100), path("one.vbt"));
    auto cancel = std::make_shared<util::CancelToken>();
    trace::TracePrefetcher::Options options;
    options.window = 1;
    options.cancel = cancel;
    trace::TracePrefetcher prefetch({path("one.vbt")}, options);
    cancel->cancel();
    // The poll loop notices the token within its interval; take()
    // either surfaces the already-finished open or throws.
    try {
        auto item = prefetch.take(0);
        EXPECT_TRUE(item.session || item.error);
    } catch (const util::CancelledError &) {
        // Equally acceptable: cancellation won the race.
    }
}

// --- suite runner over the fast path ----------------------------------

/** A FileOpener decorator counting opens per path. */
class CountingOpener
{
  public:
    explicit CountingOpener(trace::FileOpener inner)
        : inner_(std::move(inner))
    {
    }

    trace::FileOpener opener()
    {
        return [this](const std::string &path) {
            {
                const std::lock_guard<std::mutex> hold(mutex_);
                ++opens_[fs::path(path).filename().string()];
            }
            return inner_(path);
        };
    }

    std::map<std::string, std::uint64_t> opens() const
    {
        const std::lock_guard<std::mutex> hold(mutex_);
        return opens_;
    }

  private:
    trace::FileOpener inner_;
    mutable std::mutex mutex_;
    std::map<std::string, std::uint64_t> opens_;
};

TEST_F(SuiteHarness, EveryTraceIsOpenedExactlyOncePerAttempt)
{
    // The single-pass contract: validation, hashing, and replay all
    // ride one open. A second open of any path would mean the old
    // hash-then-reopen double read is back.
    CountingOpener counting(trace::fastOpener(trace::ReadMode::Auto));
    auto options = baseOptions();
    options.opener = counting.opener();
    sim::TraceSuiteRunner runner(std::move(options));
    const sim::SuiteReport report = runner.run();
    EXPECT_EQ(report.okCount(), 3u);

    const auto opens = counting.opens();
    ASSERT_EQ(opens.size(), 5u);
    for (const auto &[name, count] : opens)
        EXPECT_EQ(count, 1u) << name << " opened " << count
                             << " times; single-pass open regressed";
}

TEST_F(SuiteHarness, ReportIsByteIdenticalAcrossBackendsAndJobs)
{
    const std::string reference =
        render(sim::TraceSuiteRunner(baseOptions()).run());
    for (const trace::ReadMode mode :
         {trace::ReadMode::Stdio, trace::ReadMode::Mmap}) {
        for (const unsigned jobs : {1u, 4u}) {
            auto options = baseOptions();
            options.readMode = mode;
            options.jobs = jobs;
            sim::TraceSuiteRunner runner(std::move(options));
            EXPECT_EQ(render(runner.run()), reference)
                << trace::readModeName(mode) << " jobs=" << jobs;
        }
    }
}

TEST_F(SuiteHarness, ReportIsIdenticalAcrossPrefetchWindows)
{
    const std::string reference =
        render(sim::TraceSuiteRunner(baseOptions()).run());
    for (const std::size_t window : {std::size_t{1}, std::size_t{8}}) {
        auto options = baseOptions();
        options.prefetchWindow = window;
        sim::TraceSuiteRunner runner(std::move(options));
        EXPECT_EQ(render(runner.run()), reference)
            << "window=" << window;
    }
}

TEST_F(SuiteHarness, TransientFaultsAreRetriedToSuccessUnderMmap)
{
    trace::FaultPlan plan;
    plan.transientOpens = 1;
    plan.transientReads = 1;
    trace::FaultInjector injector(plan);

    auto options = baseOptions();
    // Faults injected *over the mmap fast path*: FaultyFile exposes no
    // view(), so the reader must degrade to buffered reads and still
    // produce the clean report.
    options.opener =
        injector.opener(trace::fastOpener(trace::ReadMode::Mmap));
    sim::TraceSuiteRunner faulty(std::move(options));
    const std::string faulty_report = render(faulty.run());

    EXPECT_GT(injector.counters().transientOpens, 0u);
    sim::TraceSuiteRunner clean(baseOptions());
    EXPECT_EQ(faulty_report, render(clean.run()));
}

} // anonymous namespace
