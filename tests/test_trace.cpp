/**
 * @file
 * Unit tests for the trace substrate: records, sources, file I/O, and
 * trace statistics.
 */

#include <cstdio>
#include <cstring>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <unistd.h>

#include "trace/branch_record.h"
#include "trace/text_io.h"
#include "trace/trace_filter.h"
#include "trace/trace_io.h"
#include "trace/trace_source.h"
#include "trace/trace_stats.h"

namespace {

using namespace vlp::trace;

BranchRecord
make(std::uint64_t pc, std::uint64_t next, bool taken, BranchKind kind)
{
    BranchRecord record;
    record.pc = pc;
    record.nextPc = next;
    record.taken = taken;
    record.kind = kind;
    return record;
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

TEST(BranchRecord, KindPredicates)
{
    EXPECT_TRUE(make(0, 0, true, BranchKind::Conditional)
                    .isConditional());
    EXPECT_FALSE(make(0, 0, true, BranchKind::Conditional).isIndirect());
    EXPECT_TRUE(make(0, 0, true, BranchKind::IndirectJump).isIndirect());
    EXPECT_TRUE(make(0, 0, true, BranchKind::IndirectCall).isIndirect());
    EXPECT_FALSE(make(0, 0, true, BranchKind::Return).isIndirect());
    EXPECT_TRUE(make(0, 0, true, BranchKind::Return).isReturn());
    EXPECT_TRUE(make(0, 0, true, BranchKind::DirectCall).isCall());
    EXPECT_TRUE(make(0, 0, true, BranchKind::IndirectCall).isCall());
    EXPECT_FALSE(make(0, 0, true, BranchKind::Unconditional).isCall());
}

TEST(BranchRecord, PathHistoryPolicy)
{
    // Conditional and indirect branches enter the THB.
    EXPECT_TRUE(make(0, 0, false, BranchKind::Conditional)
                    .entersPathHistory());
    EXPECT_TRUE(make(0, 0, true, BranchKind::IndirectJump)
                    .entersPathHistory());
    EXPECT_TRUE(make(0, 0, true, BranchKind::IndirectCall)
                    .entersPathHistory());
    // Unconditional branches and calls never do.
    EXPECT_FALSE(make(0, 0, true, BranchKind::Unconditional)
                     .entersPathHistory());
    EXPECT_FALSE(make(0, 0, true, BranchKind::DirectCall)
                     .entersPathHistory());
    // Returns only when the ablation flag asks for them.
    EXPECT_FALSE(make(0, 0, true, BranchKind::Return)
                     .entersPathHistory());
    EXPECT_TRUE(make(0, 0, true, BranchKind::Return)
                    .entersPathHistory(true));
}

TEST(BranchRecord, Names)
{
    EXPECT_STREQ(branchKindName(BranchKind::Conditional), "cond");
    EXPECT_STREQ(branchKindName(BranchKind::Unconditional), "jump");
    EXPECT_STREQ(branchKindName(BranchKind::DirectCall), "call");
    EXPECT_STREQ(branchKindName(BranchKind::IndirectJump), "ijump");
    EXPECT_STREQ(branchKindName(BranchKind::IndirectCall), "icall");
    EXPECT_STREQ(branchKindName(BranchKind::Return), "ret");
}

TEST(BranchRecord, ToStringMentionsFields)
{
    const auto text =
        toString(make(0x400000, 0x400010, true, BranchKind::Conditional));
    EXPECT_NE(text.find("400000"), std::string::npos);
    EXPECT_NE(text.find("400010"), std::string::npos);
    EXPECT_NE(text.find("cond"), std::string::npos);
    EXPECT_NE(text.find("taken"), std::string::npos);
}

TEST(VectorTraceSource, NextAndReset)
{
    VectorTraceSource source;
    source.append(make(4, 8, true, BranchKind::Conditional));
    source.append(make(8, 4, false, BranchKind::Conditional));
    EXPECT_EQ(source.size(), 2u);

    BranchRecord record;
    EXPECT_TRUE(source.next(record));
    EXPECT_EQ(record.pc, 4u);
    EXPECT_TRUE(source.next(record));
    EXPECT_EQ(record.pc, 8u);
    EXPECT_FALSE(source.next(record));

    source.reset();
    EXPECT_TRUE(source.next(record));
    EXPECT_EQ(record.pc, 4u);
}

TEST(TraceIo, RoundTripAllKinds)
{
    const std::string path = tempPath("roundtrip.vbt");
    VectorTraceSource original;
    original.append(make(0x400000, 0x400010, true,
                         BranchKind::Conditional));
    original.append(make(0x400010, 0x400014, false,
                         BranchKind::Conditional));
    original.append(make(0x400014, 0x400100, true,
                         BranchKind::Unconditional));
    original.append(make(0x400100, 0x400200, true,
                         BranchKind::DirectCall));
    original.append(make(0x400200, 0x400300, true,
                         BranchKind::IndirectJump));
    original.append(make(0x400300, 0x400400, true,
                         BranchKind::IndirectCall));
    original.append(make(0x400400, 0x400104, true, BranchKind::Return));
    saveTrace(original, path);

    VectorTraceSource loaded = loadTrace(path);
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.records(), original.records());
    std::remove(path.c_str());
}

TEST(TraceIo, ReaderStreamsAndResets)
{
    const std::string path = tempPath("stream.vbt");
    {
        TraceWriter writer(path);
        for (int i = 0; i < 10; ++i) {
            writer.write(make(4 * i, 4 * i + 4, true,
                              BranchKind::Conditional));
        }
        EXPECT_EQ(writer.count(), 10u);
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.count(), 10u);
    BranchRecord record;
    int seen = 0;
    while (reader.next(record))
        ++seen;
    EXPECT_EQ(seen, 10);
    reader.reset();
    EXPECT_TRUE(reader.next(record));
    EXPECT_EQ(record.pc, 0u);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails)
{
    EXPECT_THROW(TraceReader("/nonexistent/trace.vbt"),
                 std::runtime_error);
}

TEST(TraceIo, BadMagicFails)
{
    const std::string path = tempPath("badmagic.vbt");
    std::FILE *file = std::fopen(path.c_str(), "wb");
    std::fputs("NOTATRACE-HEADER", file);
    std::fclose(file);
    EXPECT_THROW(TraceReader reader(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceIo, CorruptKindFails)
{
    const std::string path = tempPath("badkind.vbt");
    {
        TraceWriter writer(path);
        writer.write(make(4, 8, true, BranchKind::Conditional));
    }
    // Overwrite the record's kind byte (first byte after the 20-byte
    // VBT2 header) with garbage.
    std::FILE *file = std::fopen(path.c_str(), "rb+");
    std::fseek(file, 20, SEEK_SET);
    std::fputc(0x7f, file);
    std::fclose(file);

    TraceReader reader(path);
    BranchRecord record;
    EXPECT_THROW(reader.next(record), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFileFailsAtOpen)
{
    const std::string path = tempPath("truncated.vbt");
    {
        TraceWriter writer(path);
        for (int i = 0; i < 8; ++i) {
            writer.write(make(4 * i, 4 * i + 4, true,
                              BranchKind::Conditional));
        }
    }
    // Chop the last record in half, as a torn copy or full disk would.
    std::FILE *file = std::fopen(path.c_str(), "rb+");
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    std::fclose(file);
    ASSERT_EQ(truncate(path.c_str(), size - 9), 0);

    try {
        TraceReader reader(path);
        FAIL() << "expected TraceReader to reject a truncated file";
    } catch (const std::runtime_error &error) {
        // The error must name the file and the size discrepancy.
        const std::string what = error.what();
        EXPECT_NE(what.find("truncated or corrupt"), std::string::npos)
            << what;
        EXPECT_NE(what.find(path), std::string::npos) << what;
    }
    std::remove(path.c_str());
}

TEST(TraceIo, ShortHeaderFailsAtOpen)
{
    const std::string path = tempPath("shortheader.vbt");
    std::FILE *file = std::fopen(path.c_str(), "wb");
    std::fputs("VBT2", file); // magic only, no count/checksum
    std::fclose(file);
    EXPECT_THROW(TraceReader reader(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceIo, BitFlipFailsChecksum)
{
    const std::string path = tempPath("bitflip.vbt");
    {
        TraceWriter writer(path);
        for (int i = 0; i < 8; ++i) {
            writer.write(make(4 * i, 4 * i + 4, i % 2 == 0,
                              BranchKind::Conditional));
        }
    }
    // Flip one bit inside a pc field: the size and every kind/taken
    // byte stay plausible, so only the checksum can catch it.
    std::FILE *file = std::fopen(path.c_str(), "rb+");
    std::fseek(file, 20 + 2 * 18 + 5, SEEK_SET);
    const int original = std::fgetc(file);
    std::fseek(file, -1, SEEK_CUR);
    std::fputc(original ^ 0x10, file);
    std::fclose(file);

    TraceReader reader(path);
    BranchRecord record;
    try {
        while (reader.next(record)) {
        }
        FAIL() << "expected a checksum mismatch";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what()).find("checksum"),
                  std::string::npos)
            << error.what();
    }
    std::remove(path.c_str());
}

TEST(TraceIo, ReadsLegacyV1Files)
{
    const std::string path = tempPath("legacy.vbt");
    // Hand-write a VBT1 file (12-byte header, no checksum): the reader
    // must stay able to consume traces written before VBT2.
    const BranchRecord record =
        make(0x400000, 0x400010, true, BranchKind::Conditional);
    std::FILE *file = std::fopen(path.c_str(), "wb");
    std::fputs("VBT1", file);
    const std::uint64_t count = 1;
    std::fwrite(&count, 8, 1, file); // little-endian host assumed below
    std::uint8_t buffer[18] = {};
    buffer[0] = static_cast<std::uint8_t>(record.kind);
    buffer[1] = 1;
    std::memcpy(buffer + 2, &record.pc, 8);
    std::memcpy(buffer + 10, &record.nextPc, 8);
    std::fwrite(buffer, 1, sizeof(buffer), file);
    std::fclose(file);

    const VectorTraceSource loaded = loadTrace(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.records()[0], record);
    std::remove(path.c_str());
}

TEST(TraceIo, V1SizeMismatchFailsAtOpen)
{
    const std::string path = tempPath("legacy_bad.vbt");
    std::FILE *file = std::fopen(path.c_str(), "wb");
    std::fputs("VBT1", file);
    const std::uint64_t count = 5; // promises 5 records, provides none
    std::fwrite(&count, 8, 1, file);
    std::fclose(file);
    EXPECT_THROW(TraceReader reader(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TextIo, RoundTripAllKinds)
{
    VectorTraceSource original;
    original.append(make(0x400000, 0x400010, true,
                         BranchKind::Conditional));
    original.append(make(0x400010, 0x400014, false,
                         BranchKind::Conditional));
    original.append(make(0x400014, 0x400100, true,
                         BranchKind::Unconditional));
    original.append(make(0x400100, 0x400200, true,
                         BranchKind::DirectCall));
    original.append(make(0x400200, 0x400300, true,
                         BranchKind::IndirectJump));
    original.append(make(0x400300, 0x400400, true,
                         BranchKind::IndirectCall));
    original.append(make(0x400400, 0x400104, true, BranchKind::Return));

    std::ostringstream out;
    writeTextTrace(original, out);
    std::istringstream in(out.str());
    const VectorTraceSource loaded = readTextTrace(in);
    EXPECT_EQ(loaded.records(), original.records());
}

TEST(TextIo, ParsesCommentsAndBlankLines)
{
    std::istringstream in(
        "# header comment\n"
        "\n"
        "cond 400000 400040 T\n"
        "   # indented comment\n"
        "ret 400040 400004 T\n");
    const VectorTraceSource loaded = readTextTrace(in);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.records()[0].pc, 0x400000u);
    EXPECT_TRUE(loaded.records()[1].isReturn());
}

TEST(TextIo, RejectsMalformedLines)
{
    {
        std::istringstream in("cond 400000 400040\n"); // missing T|N
        EXPECT_THROW(readTextTrace(in), std::runtime_error);
    }
    {
        std::istringstream in("blorp 400000 400040 T\n"); // bad kind
        EXPECT_THROW(readTextTrace(in), std::runtime_error);
    }
    {
        std::istringstream in("cond zz9 400040 T\n"); // bad pc
        EXPECT_THROW(readTextTrace(in), std::runtime_error);
    }
    {
        std::istringstream in("cond 400000 400040 X\n"); // bad dir
        EXPECT_THROW(readTextTrace(in), std::runtime_error);
    }
    {
        std::istringstream in("jump 400000 400040 N\n"); // jump N
        EXPECT_THROW(readTextTrace(in), std::runtime_error);
    }
}

TEST(TextIo, ParseBranchKindNames)
{
    EXPECT_EQ(parseBranchKind("cond"), BranchKind::Conditional);
    EXPECT_EQ(parseBranchKind("ijump"), BranchKind::IndirectJump);
    EXPECT_EQ(parseBranchKind("ret"), BranchKind::Return);
    EXPECT_THROW(parseBranchKind("unknown"), std::runtime_error);
}

TEST(TextIo, FileRoundTrip)
{
    const std::string path = tempPath("text_trace.txt");
    VectorTraceSource original;
    original.append(make(0x400000, 0x400040, true,
                         BranchKind::Conditional));
    saveTextTrace(original, path);
    const VectorTraceSource loaded = loadTextTrace(path);
    EXPECT_EQ(loaded.records(), original.records());
    std::remove(path.c_str());
    EXPECT_THROW(loadTextTrace("/no/such/file.txt"),
                 std::runtime_error);
}

TEST(WindowTraceSource, SkipAndTake)
{
    VectorTraceSource inner;
    for (int i = 0; i < 10; ++i)
        inner.append(make(4 * i, 4 * i + 4, true,
                          BranchKind::Conditional));

    WindowTraceSource window(inner, 3, 4);
    BranchRecord record;
    std::vector<std::uint64_t> pcs;
    while (window.next(record))
        pcs.push_back(record.pc);
    ASSERT_EQ(pcs.size(), 4u);
    EXPECT_EQ(pcs.front(), 12u);
    EXPECT_EQ(pcs.back(), 24u);

    // Reset rewinds the whole window, including the skip.
    window.reset();
    EXPECT_TRUE(window.next(record));
    EXPECT_EQ(record.pc, 12u);
}

TEST(WindowTraceSource, SkipBeyondEndIsEmpty)
{
    VectorTraceSource inner;
    inner.append(make(4, 8, true, BranchKind::Conditional));
    WindowTraceSource window(inner, 5, 0);
    BranchRecord record;
    EXPECT_FALSE(window.next(record));
}

TEST(WindowTraceSource, ZeroTakeIsUnlimited)
{
    VectorTraceSource inner;
    for (int i = 0; i < 5; ++i)
        inner.append(make(4 * i, 4 * i + 4, true,
                          BranchKind::Conditional));
    WindowTraceSource window(inner, 2, 0);
    BranchRecord record;
    int seen = 0;
    while (window.next(record))
        ++seen;
    EXPECT_EQ(seen, 3);
}

TEST(FilterTraceSource, PassesMatchingRecordsOnly)
{
    VectorTraceSource inner;
    inner.append(make(4, 8, true, BranchKind::Conditional));
    inner.append(make(8, 16, true, BranchKind::IndirectJump));
    inner.append(make(16, 20, false, BranchKind::Conditional));
    inner.append(make(20, 24, true, BranchKind::Return));

    FilterTraceSource filtered(
        inner,
        [](const BranchRecord &record) {
            return record.isConditional();
        });
    BranchRecord record;
    int seen = 0;
    while (filtered.next(record)) {
        EXPECT_TRUE(record.isConditional());
        ++seen;
    }
    EXPECT_EQ(seen, 2);
    filtered.reset();
    EXPECT_TRUE(filtered.next(record));
    EXPECT_EQ(record.pc, 4u);
}

TEST(TraceStats, CountsPerKind)
{
    TraceStats stats;
    stats.observe(make(4, 8, true, BranchKind::Conditional));
    stats.observe(make(4, 8, false, BranchKind::Conditional));
    stats.observe(make(8, 8, true, BranchKind::Conditional));
    stats.observe(make(12, 16, true, BranchKind::IndirectJump));
    stats.observe(make(16, 20, true, BranchKind::IndirectCall));
    stats.observe(make(20, 24, true, BranchKind::Return));
    stats.observe(make(24, 28, true, BranchKind::DirectCall));

    EXPECT_EQ(stats.dynamicConditional(), 3u);
    EXPECT_EQ(stats.staticConditional(), 2u); // pcs 4 and 8
    EXPECT_EQ(stats.dynamicIndirect(), 2u);
    EXPECT_EQ(stats.staticIndirect(), 2u);
    // Returns are not part of the indirect counts.
    EXPECT_EQ(stats.dynamicCount(BranchKind::Return), 1u);
    EXPECT_EQ(stats.dynamicTotal(), 7u);
    EXPECT_NEAR(stats.takenRate(), 100.0 * 2 / 3, 1e-9);
}

TEST(TraceStats, ObserveAllConsumesSource)
{
    VectorTraceSource source;
    for (int i = 0; i < 5; ++i)
        source.append(make(4, 8, true, BranchKind::Conditional));
    TraceStats stats;
    stats.observeAll(source);
    EXPECT_EQ(stats.dynamicConditional(), 5u);
    BranchRecord record;
    EXPECT_FALSE(source.next(record));
}

TEST(TraceStats, SummaryMentionsCounts)
{
    TraceStats stats;
    stats.observe(make(4, 8, true, BranchKind::Conditional));
    const std::string summary = stats.summary();
    EXPECT_NE(summary.find("conditional"), std::string::npos);
    EXPECT_NE(summary.find("indirect"), std::string::npos);
}

} // anonymous namespace
