/**
 * @file
 * Tests for the simulator and the experiment harness.
 */

#include <cmath>
#include <cstdlib>
#include <gtest/gtest.h>

#include "predictors/bimodal.h"
#include "predictors/gshare.h"
#include "predictors/target_cache.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "sim/timing.h"
#include "workload/benchmarks.h"

namespace {

using namespace vlp;
using namespace vlp::sim;
using trace::BranchKind;
using trace::BranchRecord;

BranchRecord
make(BranchKind kind, std::uint64_t pc, std::uint64_t next,
     bool taken = true)
{
    BranchRecord record;
    record.pc = pc;
    record.nextPc = next;
    record.taken = taken;
    record.kind = kind;
    return record;
}

TEST(Simulator, CountsOnlyRelevantClasses)
{
    trace::VectorTraceSource trace;
    trace.append(make(BranchKind::Conditional, 0x400000, 0x400040));
    trace.append(make(BranchKind::Conditional, 0x400040, 0x400044,
                      false));
    trace.append(make(BranchKind::IndirectJump, 0x400044, 0x400100));
    trace.append(make(BranchKind::Unconditional, 0x400100, 0x400200));
    trace.append(make(BranchKind::DirectCall, 0x400200, 0x400300));
    trace.append(make(BranchKind::Return, 0x400300, 0x400204));

    pred::GsharePredictor gshare(10);
    pred::PatternTargetCache cache(7);
    Simulator simulator;
    simulator.addConditional(&gshare);
    simulator.addIndirect(&cache);
    simulator.run(trace);

    const auto cond_results = simulator.conditionalResults();
    ASSERT_EQ(cond_results.size(), 1u);
    EXPECT_EQ(cond_results[0].branches, 2u);
    EXPECT_EQ(cond_results[0].name, "gshare");
    EXPECT_EQ(cond_results[0].sizeBytes, gshare.sizeBytes());

    const auto ind_results = simulator.indirectResults();
    ASSERT_EQ(ind_results.size(), 1u);
    EXPECT_EQ(ind_results[0].branches, 1u);
}

TEST(Simulator, RasPredictsMatchedCallReturns)
{
    trace::VectorTraceSource trace;
    // call from 0x400000 -> return must come back to 0x400004.
    trace.append(make(BranchKind::DirectCall, 0x400000, 0x500000));
    trace.append(make(BranchKind::DirectCall, 0x500000, 0x600000));
    trace.append(make(BranchKind::Return, 0x600000, 0x500004));
    trace.append(make(BranchKind::Return, 0x500004, 0x400004));

    Simulator simulator;
    simulator.run(trace);
    const auto ras = simulator.rasResult();
    EXPECT_EQ(ras.branches, 2u);
    EXPECT_EQ(ras.mispredictions, 0u);
    EXPECT_DOUBLE_EQ(ras.rate(), 0.0);
}

TEST(Simulator, RasCountsMismatchedReturns)
{
    trace::VectorTraceSource trace;
    trace.append(make(BranchKind::DirectCall, 0x400000, 0x500000));
    // A return that goes somewhere else (longjmp-like).
    trace.append(make(BranchKind::Return, 0x500000, 0x999999));

    Simulator simulator;
    simulator.run(trace);
    EXPECT_EQ(simulator.rasResult().mispredictions, 1u);
}

TEST(Simulator, IdenticalPredictorsSeeIdenticalStreams)
{
    const auto &spec = workload::findBenchmark("compress");
    setenv("VLPSIM_SCALE", "0.02", 1);
    auto trace = workload::generateTrace(spec,
                                         workload::InputKind::Test);
    unsetenv("VLPSIM_SCALE");

    pred::GsharePredictor first(12), second(12);
    Simulator simulator;
    simulator.addConditional(&first);
    simulator.addConditional(&second);
    simulator.run(trace);
    const auto results = simulator.conditionalResults();
    EXPECT_EQ(results[0].mispredictions, results[1].mispredictions);
    EXPECT_EQ(results[0].branches, results[1].branches);
}

TEST(Simulator, PerBranchTracking)
{
    trace::VectorTraceSource trace;
    for (int i = 0; i < 10; ++i) {
        trace.append(make(BranchKind::Conditional, 0x400000, 0x400040));
        trace.append(make(BranchKind::Conditional, 0x400100, 0x400104,
                          false));
    }
    pred::BimodalPredictor bimodal(10);
    Simulator simulator;
    simulator.setTrackPerBranch(true);
    simulator.addConditional(&bimodal);
    simulator.run(trace);

    const auto &per_branch = simulator.conditionalPerBranch(0);
    ASSERT_EQ(per_branch.size(), 2u);
    EXPECT_EQ(per_branch.at(0x400000).executions, 10u);
    EXPECT_EQ(per_branch.at(0x400100).executions, 10u);
    // The always-taken branch warms up from weakly-not-taken: at
    // most a couple of early misses, none later.
    EXPECT_LE(per_branch.at(0x400000).mispredictions, 2u);
}

TEST(PredictorResult, RateComputation)
{
    PredictorResult result;
    result.branches = 200;
    result.mispredictions = 25;
    EXPECT_DOUBLE_EQ(result.rate(), 12.5);
    PredictorResult empty;
    EXPECT_DOUBLE_EQ(empty.rate(), 0.0);
}

TEST(ComparisonRow, EntryLookup)
{
    ComparisonRow row;
    row.benchmark = "gcc";
    row.entries.push_back({"gshare", 100, 10, 10.0});
    EXPECT_EQ(row.entry("gshare").mispredictions, 10u);
    EXPECT_THROW(row.entry("tage"), std::runtime_error);
}

TEST(Timing, BaseCyclesFromFetchWidth)
{
    TimingParameters parameters;
    parameters.instructionsPerBranch = 5.0;
    parameters.fetchWidth = 4.0;
    const auto estimate = estimateTiming(parameters, 1000, 0);
    EXPECT_DOUBLE_EQ(estimate.baseCycles, 1250.0);
    EXPECT_DOUBLE_EQ(estimate.mispredictCycles, 0.0);
    EXPECT_DOUBLE_EQ(estimate.totalCycles(), 1250.0);
    EXPECT_DOUBLE_EQ(estimate.ipc(5000.0), 4.0);
}

TEST(Timing, MispredictAndRepredictPenalties)
{
    TimingParameters parameters;
    parameters.mispredictPenaltyCycles = 10.0;
    parameters.repredictPenaltyCycles = 1.0;
    const auto estimate = estimateTiming(parameters, 1000, 50, 200);
    EXPECT_DOUBLE_EQ(estimate.mispredictCycles, 500.0);
    EXPECT_DOUBLE_EQ(estimate.repredictCycles, 200.0);
}

TEST(Timing, SpeedupOrdering)
{
    TimingParameters parameters;
    const auto bad = estimateTiming(parameters, 1000, 100);
    const auto good = estimateTiming(parameters, 1000, 10);
    EXPECT_GT(speedup(bad, good), 1.0);
    EXPECT_LT(speedup(good, bad), 1.0);
    // Fewer mispredictions with a small re-predict tax still wins
    // when the accuracy gap is this large.
    const auto good_taxed = estimateTiming(parameters, 1000, 10, 100);
    EXPECT_GT(speedup(bad, good_taxed), 1.0);
}

TEST(Timing, ZeroBranchesYieldZeroEstimate)
{
    // branches == 0 used to divide 0/0 into the rates; the estimate
    // must instead be the explicit all-zero result.
    TimingParameters parameters;
    const auto estimate = estimateTiming(parameters, 0, 0);
    EXPECT_DOUBLE_EQ(estimate.baseCycles, 0.0);
    EXPECT_DOUBLE_EQ(estimate.totalCycles(), 0.0);
    EXPECT_DOUBLE_EQ(estimate.ipc(0.0), 0.0);
    EXPECT_DOUBLE_EQ(estimate.ipc(5000.0), 0.0);
    EXPECT_DOUBLE_EQ(estimate.branchesPerCycle(), 0.0);
}

TEST(Timing, DegenerateFetchWidthYieldsZeroEstimate)
{
    TimingParameters parameters;
    parameters.fetchWidth = 0.0;
    const auto zero = estimateTiming(parameters, 1000, 50, 10);
    EXPECT_DOUBLE_EQ(zero.totalCycles(), 0.0);
    EXPECT_DOUBLE_EQ(zero.ipc(5000.0), 0.0);
    EXPECT_EQ(zero.branches, 1000u);
    EXPECT_EQ(zero.mispredictions, 50u);

    parameters.fetchWidth = std::nan("");
    const auto nan_width = estimateTiming(parameters, 1000, 50, 10);
    EXPECT_DOUBLE_EQ(nan_width.totalCycles(), 0.0);
    EXPECT_DOUBLE_EQ(nan_width.ipc(5000.0), 0.0);
}

TEST(Timing, RatesNeverProduceNanOrInfinity)
{
    TimingParameters parameters;
    const auto estimate = estimateTiming(parameters, 1000, 50);
    // Zero instructions over real cycles is 0, not 0/x ambiguity.
    EXPECT_DOUBLE_EQ(estimate.ipc(0.0), 0.0);
    // NaN instructions must not leak through the division.
    EXPECT_DOUBLE_EQ(estimate.ipc(std::nan("")), 0.0);
    EXPECT_TRUE(std::isfinite(estimate.branchesPerCycle()));

    TimingEstimate blank;
    EXPECT_DOUBLE_EQ(blank.totalCycles(), 0.0);
    EXPECT_DOUBLE_EQ(blank.ipc(5000.0), 0.0);
    EXPECT_DOUBLE_EQ(blank.branchesPerCycle(), 0.0);
}

TEST(Timing, FromPredictorResult)
{
    TimingParameters parameters;
    PredictorResult result;
    result.branches = 2000;
    result.mispredictions = 40;
    const auto via_result = estimateTiming(parameters, result);
    const auto direct = estimateTiming(parameters, 2000, 40);
    EXPECT_DOUBLE_EQ(via_result.totalCycles(), direct.totalCycles());
}

class ExperimentHarness : public ::testing::Test
{
  protected:
    void SetUp() override { setenv("VLPSIM_SCALE", "0.05", 1); }
    void TearDown() override { unsetenv("VLPSIM_SCALE"); }
};

TEST_F(ExperimentHarness, CompareConditionalRowShape)
{
    ExperimentContext context;
    const auto &spec = workload::findBenchmark("li");
    const auto row = compareConditional(context, spec, 4096, 4, true);
    EXPECT_EQ(row.benchmark, "li");
    ASSERT_EQ(row.entries.size(), 4u);
    EXPECT_EQ(row.entries[0].predictor, names::gshare);
    EXPECT_EQ(row.entries[1].predictor, names::flp);
    EXPECT_EQ(row.entries[2].predictor, names::flpTuned);
    EXPECT_EQ(row.entries[3].predictor, names::vlp);
    for (const auto &entry : row.entries) {
        EXPECT_GT(entry.branches, 0u);
        EXPECT_GE(entry.rate, 0.0);
        EXPECT_LE(entry.rate, 100.0);
    }
    // All predictors saw the same branches.
    EXPECT_EQ(row.entries[0].branches, row.entries[3].branches);
}

TEST_F(ExperimentHarness, CompareConditionalWithoutTuned)
{
    ExperimentContext context;
    const auto &spec = workload::findBenchmark("compress");
    const auto row = compareConditional(context, spec, 4096, 4, false);
    ASSERT_EQ(row.entries.size(), 3u);
    EXPECT_EQ(row.entries[2].predictor, names::vlp);
}

TEST_F(ExperimentHarness, CompareIndirectRowShape)
{
    ExperimentContext context;
    const auto &spec = workload::findBenchmark("perl");
    const auto row = compareIndirect(context, spec, 2048, 2, true);
    ASSERT_EQ(row.entries.size(), 5u);
    EXPECT_EQ(row.entries[0].predictor, names::chpPath);
    EXPECT_EQ(row.entries[1].predictor, names::chpPattern);
    EXPECT_EQ(row.entries[2].predictor, names::flp);
    EXPECT_EQ(row.entries[3].predictor, names::flpTuned);
    EXPECT_EQ(row.entries[4].predictor, names::vlp);
    EXPECT_GT(row.entries[0].branches, 0u);
}

TEST_F(ExperimentHarness, SweepsAreCached)
{
    ExperimentContext context;
    const auto &spec = workload::findBenchmark("compress");
    const auto &first = context.conditionalSweep(spec, 12);
    const auto &second = context.conditionalSweep(spec, 12);
    EXPECT_EQ(&first, &second); // same cached object
    EXPECT_EQ(first.mispredictions.size(), core::maxPathLength);
    EXPECT_GT(first.branches, 0u);
}

TEST_F(ExperimentHarness, AssignmentsAreCached)
{
    ExperimentContext context;
    const auto &spec = workload::findBenchmark("compress");
    const auto &first = context.conditionalAssignment(spec, 12);
    const auto &second = context.conditionalAssignment(spec, 12);
    EXPECT_EQ(&first, &second);
    EXPECT_GT(first.size(), 0u);
}

TEST_F(ExperimentHarness, GlobalLengthWithinRange)
{
    ExperimentContext context;
    const auto average = context.averageConditionalSweep(1024);
    EXPECT_EQ(average.size(), core::maxPathLength);
    const unsigned global = context.globalConditionalLength(1024);
    EXPECT_GE(global, 1u);
    EXPECT_LE(global, core::maxPathLength);
    // The reported minimum really is the curve's minimum.
    for (unsigned length = 1; length <= average.size(); ++length)
        EXPECT_GE(average[length - 1] + 1e-12, average[global - 1]);
}

TEST_F(ExperimentHarness, GlobalIndirectLengthWithinRange)
{
    ExperimentContext context;
    const unsigned global = context.globalIndirectLength(2048);
    EXPECT_GE(global, 1u);
    EXPECT_LE(global, core::maxPathLength);
}

TEST_F(ExperimentHarness, HistoryOptionsKeyedSeparately)
{
    // Sweeps with different path-history options must not share cache
    // entries: rotation changes the indices, so (in general) the
    // misprediction counts too.
    ExperimentContext context;
    const auto &spec = workload::findBenchmark("li");
    core::PathHistoryOptions rotated;
    core::PathHistoryOptions plain;
    plain.rotateTargets = false;
    const auto &with_rotation =
        context.conditionalSweep(spec, 12, rotated);
    const auto &without_rotation =
        context.conditionalSweep(spec, 12, plain);
    EXPECT_NE(&with_rotation, &without_rotation);
    // Length-1 indices ignore rotation entirely, so compare a deep
    // length where rotation matters.
    EXPECT_NE(with_rotation.mispredictions[15],
              without_rotation.mispredictions[15]);
}

TEST_F(ExperimentHarness, TraceCacheSurvivesEviction)
{
    // Touch more benchmarks than the LRU capacity, then re-fetch the
    // first: it must be regenerated identically (determinism makes
    // eviction invisible).
    ExperimentContext context;
    const auto &first = workload::findBenchmark("compress");
    const auto initial = context.trace(first, workload::InputKind::Test);
    const std::size_t initial_size = initial->size();
    const trace::BranchRecord first_record = initial->records().front();

    for (const char *name : {"li", "pgp", "go", "plot", "ss"}) {
        context.trace(workload::findBenchmark(name),
                      workload::InputKind::Test);
    }
    const auto again = context.trace(first, workload::InputKind::Test);
    EXPECT_EQ(again->size(), initial_size);
    EXPECT_EQ(again->records().front(), first_record);
}

TEST_F(ExperimentHarness, TraceReferenceSurvivesEviction)
{
    // Regression: trace() used to return a bare reference that dangled
    // as soon as the 4-entry LRU evicted the benchmark — a caller
    // holding a trace across a nested profiling call read freed
    // memory. The shared_ptr return pins the trace for as long as the
    // caller needs it.
    ExperimentContext context;
    const auto &first = workload::findBenchmark("compress");
    const auto held = context.trace(first, workload::InputKind::Test);
    const std::size_t held_size = held->size();
    const trace::BranchRecord first_record = held->records().front();
    const trace::BranchRecord last_record = held->records().back();

    // Evict "compress" by touching more benchmarks than the LRU holds
    // (the capacity is 4), while the original pointer stays live.
    for (const char *name : {"li", "pgp", "go", "plot", "ss", "tex"}) {
        context.trace(workload::findBenchmark(name),
                      workload::InputKind::Test);
    }

    // The held trace must still be fully readable.
    EXPECT_EQ(held->size(), held_size);
    EXPECT_EQ(held->records().front(), first_record);
    EXPECT_EQ(held->records().back(), last_record);
    held->reset();
    trace::BranchRecord record;
    std::size_t count = 0;
    while (held->next(record))
        ++count;
    EXPECT_EQ(count, held_size);

    // And a re-fetch regenerates an identical trace in a new entry.
    const auto again = context.trace(first, workload::InputKind::Test);
    EXPECT_NE(again.get(), held.get());
    EXPECT_EQ(again->size(), held_size);
    EXPECT_EQ(again->records().front(), first_record);
}

TEST(PredictorResultRate, ZeroBranchesIsZeroNotNan)
{
    // An empty filtered trace (e.g. a benchmark with no indirect
    // branches) must report a 0.0 rate, not NaN, so ASCII tables and
    // CSV never print "nan".
    PredictorResult result;
    result.name = "empty";
    EXPECT_EQ(result.branches, 0u);
    const double rate = result.rate();
    EXPECT_FALSE(std::isnan(rate));
    EXPECT_EQ(rate, 0.0);
}

} // anonymous namespace
