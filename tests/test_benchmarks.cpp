/**
 * @file
 * Tests for the 16 benchmark models: suite integrity, generation
 * determinism, static-count targets, and input-set separation.
 */

#include <cstdlib>
#include <gtest/gtest.h>
#include <set>

#include "trace/trace_stats.h"
#include "workload/benchmarks.h"

namespace {

using namespace vlp;
using namespace vlp::workload;

TEST(BenchmarkSuite, SixteenUniqueNames)
{
    const auto &suite = benchmarkSuite();
    ASSERT_EQ(suite.size(), 16u);
    std::set<std::string> names;
    for (const auto &spec : suite)
        names.insert(spec.name);
    EXPECT_EQ(names.size(), 16u);
}

TEST(BenchmarkSuite, EightSpecMembers)
{
    unsigned spec_count = 0;
    for (const auto &spec : benchmarkSuite())
        spec_count += spec.isSpec ? 1 : 0;
    EXPECT_EQ(spec_count, 8u);
    const auto spec_names = benchmarkNames(true);
    EXPECT_EQ(spec_names.size(), 8u);
    EXPECT_EQ(spec_names.front(), "go");
}

TEST(BenchmarkSuite, EightIndirectHeavyMembers)
{
    // Table 3's selection: m88ksim, gcc, li, perl, groff, gs, plot,
    // python.
    const auto names = indirectHeavyNames();
    const std::set<std::string> expected = {
        "m88ksim", "gcc", "li", "perl", "groff", "gs", "plot", "python",
    };
    EXPECT_EQ(std::set<std::string>(names.begin(), names.end()),
              expected);
}

TEST(BenchmarkSuite, FindByName)
{
    EXPECT_EQ(findBenchmark("gcc").name, "gcc");
    EXPECT_EQ(findBenchmark("tex").name, "tex");
    EXPECT_THROW(findBenchmark("quake"), std::runtime_error);
}

TEST(BenchmarkSuite, PaperCountsRecorded)
{
    const auto &gcc = findBenchmark("gcc");
    EXPECT_EQ(gcc.paperDynamicCond, 27'600'000u);
    EXPECT_EQ(gcc.paperStaticCond, 14419u);
    EXPECT_EQ(gcc.paperStaticInd, 192u);
    const auto &compress = findBenchmark("compress");
    EXPECT_EQ(compress.paperStaticInd, 3u);
}

TEST(BenchmarkSuite, ProfileAndTestInputsDiffer)
{
    for (const auto &spec : benchmarkSuite()) {
        EXPECT_NE(spec.profileInput.seed, spec.testInput.seed)
            << spec.name;
    }
}

TEST(BenchmarkSuite, DynamicBudgetScales)
{
    const auto &spec = findBenchmark("gcc");
    unsetenv("VLPSIM_SCALE");
    const auto base = spec.dynamicBudget();
    EXPECT_EQ(base, static_cast<std::uint64_t>(spec.paperDynamicCond
                                               * baseScale));
    EXPECT_EQ(spec.dynamicBudget(2.0), base * 2);
    setenv("VLPSIM_SCALE", "0.5", 1);
    EXPECT_EQ(spec.dynamicBudget(), base / 2);
    unsetenv("VLPSIM_SCALE");
}

class BenchmarkModel : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BenchmarkModel, ProgramBuildsWithTargetStatics)
{
    const auto &spec = findBenchmark(GetParam());
    Program program = buildProgram(spec);
    // The generator overshoots the conditional target by at most one
    // work function plus the phase overhead.
    EXPECT_GE(program.staticConditionals(),
              spec.structure.targetStaticCond * 9 / 10);
    EXPECT_LE(program.staticConditionals(),
              spec.structure.targetStaticCond + 300);
    // The indirect budget is never exceeded.
    EXPECT_LE(program.staticIndirects(),
              spec.structure.targetStaticInd);
    EXPECT_GE(program.staticIndirects(), 1u);
}

TEST_P(BenchmarkModel, GenerationIsDeterministic)
{
    const auto &spec = findBenchmark(GetParam());
    setenv("VLPSIM_SCALE", "0.01", 1);
    auto first = generateTrace(spec, InputKind::Profile);
    auto second = generateTrace(spec, InputKind::Profile);
    unsetenv("VLPSIM_SCALE");
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(first.records(), second.records());
}

TEST_P(BenchmarkModel, ProfileAndTestTracesDiffer)
{
    const auto &spec = findBenchmark(GetParam());
    setenv("VLPSIM_SCALE", "0.01", 1);
    auto profile = generateTrace(spec, InputKind::Profile);
    auto test = generateTrace(spec, InputKind::Test);
    unsetenv("VLPSIM_SCALE");
    EXPECT_NE(profile.records(), test.records());
}

TEST_P(BenchmarkModel, TraceMeetsBudgetAndShape)
{
    const auto &spec = findBenchmark(GetParam());
    setenv("VLPSIM_SCALE", "0.05", 1);
    auto trace = generateTrace(spec, InputKind::Test);
    unsetenv("VLPSIM_SCALE");

    trace::TraceStats stats;
    stats.observeAll(trace);
    // Allow a few branches of slack: the budget is recomputed here
    // with a different floating-point evaluation order.
    EXPECT_GE(stats.dynamicConditional() + 8, spec.dynamicBudget(0.05));
    // Branch mix sanity: calls and returns balance except for frames
    // still live when the budget cut the run off.
    const std::uint64_t calls =
        stats.dynamicCount(trace::BranchKind::DirectCall)
        + stats.dynamicCount(trace::BranchKind::IndirectCall);
    const std::uint64_t returns =
        stats.dynamicCount(trace::BranchKind::Return);
    EXPECT_GT(calls, 0u);
    EXPECT_LE(returns, calls);
    EXPECT_LE(calls - returns, 64u);
    // Taken rate in a plausible band (loops dominate).
    EXPECT_GT(stats.takenRate(), 40.0);
    EXPECT_LT(stats.takenRate(), 99.0);
}

INSTANTIATE_TEST_SUITE_P(
    All, BenchmarkModel,
    ::testing::Values("go", "m88ksim", "gcc", "compress", "li", "ijpeg",
                      "perl", "vortex", "chess", "groff", "gs", "pgp",
                      "plot", "python", "ss", "tex"));

} // anonymous namespace
