/**
 * @file
 * Tests for the deterministic chaos switchboard (util/chaos.h) and its
 * integration with the suite runner: decisions are pure functions of
 * (seed, section, identity, reach count), so the same seed produces
 * the same faults — and the same suite report — regardless of thread
 * count or where the corpus lives; disabled chaos never fires; the
 * `only` filter targets sections; and the synthetic retry fault
 * (budget +1) leaves suite results untouched.
 */

#include <cstdint>
#include <filesystem>
#include <gtest/gtest.h>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/suite_runner.h"
#include "store/artifact_store.h"
#include "trace/trace_io.h"
#include "util/chaos.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;
using namespace vlp;

/** Guarantees the process-wide switchboard is off after every test. */
class ChaosTest : public ::testing::Test
{
  protected:
    void TearDown() override { util::chaos::disable(); }

    static util::chaos::Config always(std::uint64_t seed)
    {
        util::chaos::Config config;
        config.enabled = true;
        config.seed = seed;
        config.activateProbability = 1.0;
        config.fireProbability = 1.0;
        return config;
    }
};

TEST_F(ChaosTest, DisabledNeverFiresAndKeepsNoCounters)
{
    util::chaos::disable();
    EXPECT_FALSE(util::chaos::enabled());
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(CHAOS_SECTION("test.section"));
        EXPECT_FALSE(util::chaos::fire("test.other", "identity"));
    }
    EXPECT_TRUE(util::chaos::counters().empty());
}

TEST_F(ChaosTest, SameSeedReplaysDecisionsAndCounters)
{
    const auto draw = [](std::uint64_t seed) {
        util::chaos::Config config;
        config.enabled = true;
        config.seed = seed;
        config.activateProbability = 1.0;
        config.fireProbability = 0.3;
        util::chaos::configure(config);
        std::vector<bool> decisions;
        for (int i = 0; i < 64; ++i) {
            decisions.push_back(util::chaos::fire("test.a", "x"));
            decisions.push_back(util::chaos::fire("test.a", "y"));
            decisions.push_back(util::chaos::fire("test.b"));
        }
        return std::make_pair(decisions, util::chaos::counters());
    };

    const auto first = draw(42);
    const auto replay = draw(42);
    EXPECT_EQ(first.first, replay.first);
    EXPECT_EQ(first.second, replay.second);

    // A different seed is a different campaign.
    const auto other = draw(43);
    EXPECT_NE(first.first, other.first);
}

TEST_F(ChaosTest, ActivationProbabilityZeroMeansNoFaults)
{
    util::chaos::Config config;
    config.enabled = true;
    config.seed = 7;
    config.activateProbability = 0.0;
    config.fireProbability = 1.0;
    util::chaos::configure(config);

    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(CHAOS_SECTION("test.section", "id"));

    const auto counters = util::chaos::counters();
    ASSERT_EQ(counters.count("test.section"), 1u);
    const auto &stats = counters.at("test.section");
    EXPECT_FALSE(stats.activated);
    EXPECT_EQ(stats.reached, 50u);
    EXPECT_EQ(stats.fired, 0u);
    EXPECT_EQ(stats.skipped, 50u);
}

TEST_F(ChaosTest, CertaintyFiresEveryReach)
{
    util::chaos::configure(always(7));
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(CHAOS_SECTION("test.section", "id"));
    const auto counters = util::chaos::counters();
    const auto &stats = counters.at("test.section");
    EXPECT_TRUE(stats.activated);
    EXPECT_EQ(stats.fired, 50u);
    EXPECT_EQ(stats.skipped, 0u);
}

TEST_F(ChaosTest, OnlyFilterTargetsSections)
{
    auto config = always(3);
    config.only = {"test.wanted"};
    util::chaos::configure(config);

    EXPECT_TRUE(CHAOS_SECTION("test.wanted"));
    EXPECT_FALSE(CHAOS_SECTION("test.unwanted"));

    const auto counters = util::chaos::counters();
    EXPECT_TRUE(counters.at("test.wanted").activated);
    EXPECT_FALSE(counters.at("test.unwanted").activated);
    // Filtered sections are still accounted as reached.
    EXPECT_EQ(counters.at("test.unwanted").reached, 1u);
}

TEST_F(ChaosTest, IdentityStreamsAreIndependent)
{
    // The per-identity decision stream must not depend on how reaches
    // of *other* identities interleave with it — that independence is
    // what makes suite faults identical across --jobs values.
    const auto sequenceFor = [](const std::string &identity,
                                bool interleave) {
        util::chaos::Config config;
        config.enabled = true;
        config.seed = 99;
        config.activateProbability = 1.0;
        config.fireProbability = 0.4;
        util::chaos::configure(config);
        std::vector<bool> decisions;
        for (int i = 0; i < 32; ++i) {
            if (interleave) {
                util::chaos::fire("test.stream", "noise-a");
                util::chaos::fire("test.stream", "noise-b");
            }
            decisions.push_back(
                util::chaos::fire("test.stream", identity));
        }
        return decisions;
    };

    EXPECT_EQ(sequenceFor("victim", false),
              sequenceFor("victim", true));
}

TEST_F(ChaosTest, PathKeyStripsDirectories)
{
    EXPECT_EQ(util::chaos::pathKey("/tmp/corpus/gcc.profile.vbt"),
              "gcc.profile.vbt");
    EXPECT_EQ(util::chaos::pathKey("relative/dir/t.vbt"), "t.vbt");
    EXPECT_EQ(util::chaos::pathKey("bare.vbt"), "bare.vbt");
    EXPECT_EQ(util::chaos::pathKey(""), "");
}

TEST_F(ChaosTest, KnownSectionsRegistryIsSortedAndStable)
{
    const auto &sections = util::chaos::knownSections();
    EXPECT_GE(sections.size(), 16u);
    for (std::size_t i = 1; i < sections.size(); ++i)
        EXPECT_LT(sections[i - 1], sections[i]);
}

// --- suite integration ------------------------------------------------

/**
 * A deterministic mixed trace: path-correlated conditionals plus
 * enough indirect jumps to clear the suite's noise threshold.
 */
trace::VectorTraceSource
makeTrace(std::uint64_t seed, std::size_t records)
{
    util::Rng rng(seed);
    trace::VectorTraceSource source;
    for (std::size_t i = 0; i < records; ++i) {
        trace::BranchRecord record;
        if (rng.nextBool(0.6)) {
            record.kind = trace::BranchKind::Conditional;
            record.pc = 0x1000 + 16 * rng.nextBelow(32);
            record.taken = ((record.pc >> 4) + i / 7) % 3 != 0;
            record.nextPc =
                record.taken ? record.pc + 64 : record.pc + 4;
        } else {
            record.kind = trace::BranchKind::IndirectJump;
            record.pc = 0x8000 + 16 * rng.nextBelow(8);
            record.taken = true;
            record.nextPc = 0x9000 + 64 * ((record.pc >> 4) % 4);
        }
        source.append(record);
    }
    return source;
}

/** A paired corpus in a fresh scratch directory, removed on teardown. */
class ChaosSuiteTest : public ChaosTest
{
  protected:
    void SetUp() override
    {
        directory_ = testing::TempDir() + "/vlpsim_chaos_"
            + ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        fs::remove_all(directory_);
        corpus_ = directory_ + "/corpus";
        fs::create_directories(corpus_);
        trace::saveTrace(makeTrace(1, 2500),
                         corpus_ + "/alpha.profile.vbt");
        trace::saveTrace(makeTrace(2, 2500),
                         corpus_ + "/alpha.test.vbt");
        trace::saveTrace(makeTrace(3, 2500),
                         corpus_ + "/beta.profile.vbt");
        trace::saveTrace(makeTrace(4, 2500),
                         corpus_ + "/beta.test.vbt");
        trace::saveTrace(makeTrace(5, 2500), corpus_ + "/gamma.vbt");
    }

    void TearDown() override
    {
        ChaosTest::TearDown();
        fs::remove_all(directory_);
    }

    sim::TraceSuiteOptions baseOptions(unsigned jobs) const
    {
        sim::TraceSuiteOptions options;
        options.directory = corpus_;
        options.bytes = 1024;
        options.jobs = jobs;
        options.backoffBaseMs = 0;
        options.sleeper = [](unsigned) {};
        return options;
    }

    static std::string render(const sim::SuiteReport &report)
    {
        std::ostringstream out;
        report.print(out);
        return out.str();
    }

    /** Configure chaos, run the suite, snapshot (render, counters). */
    std::pair<std::string,
              std::map<std::string, util::chaos::SectionStats>>
    chaosRun(const util::chaos::Config &config, unsigned jobs)
    {
        util::chaos::configure(config);
        sim::TraceSuiteRunner runner(baseOptions(jobs));
        const sim::SuiteReport report = runner.run();
        auto counters = util::chaos::counters();
        util::chaos::disable();
        return {render(report), std::move(counters)};
    }

    std::string directory_;
    std::string corpus_;
};

TEST_F(ChaosSuiteTest, SuiteFaultsAreIdenticalAcrossJobsAndRuns)
{
    util::chaos::Config config;
    config.enabled = true;
    config.seed = 5;
    config.activateProbability = 0.75;
    config.fireProbability = 0.25;

    const auto serial = chaosRun(config, 1);
    const auto parallel = chaosRun(config, 4);
    const auto again = chaosRun(config, 1);

    // Same seed => identical faults => byte-identical reports and
    // identical section counters, across thread counts and runs.
    EXPECT_EQ(serial.first, parallel.first);
    EXPECT_EQ(serial.first, again.first);
    EXPECT_EQ(serial.second, again.second);
    // Across *different* jobs values the per-identity fault decisions
    // still replay (hence the identical reports above), but the
    // producer-death section's reach count is shaped by the producer
    // pool itself — each fire kills a producer, and the pool size is
    // the jobs value — so it alone is excluded from the cross-jobs
    // counter comparison.
    auto scoped_serial = serial.second;
    auto scoped_parallel = parallel.second;
    scoped_serial.erase("trace.prefetch.producer-death");
    scoped_parallel.erase("trace.prefetch.producer-death");
    EXPECT_EQ(scoped_serial, scoped_parallel);

    // The campaign probabilities really did reach hazard points.
    std::uint64_t reached = 0;
    for (const auto &entry : serial.second)
        reached += entry.second.reached;
    EXPECT_GT(reached, 0u);
}

TEST_F(ChaosSuiteTest, SeedSweepCoversTraceAndRetrySections)
{
    // Across a handful of seeds at full activation the suite's own
    // hazard points all fire somewhere — the campaign driver's
    // coverage check in miniature.
    std::set<std::string> fired;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        util::chaos::Config config;
        config.enabled = true;
        config.seed = seed;
        config.activateProbability = 1.0;
        config.fireProbability = 0.2;
        const auto result = chaosRun(config, 2);
        for (const auto &entry : result.second)
            if (entry.second.fired > 0)
                fired.insert(entry.first);
    }

    for (const char *section :
         {"retry.transient", "trace.open.transient",
          "trace.read.short", "trace.read.transient"}) {
        EXPECT_EQ(fired.count(section), 1u)
            << section << " never fired across the sweep";
    }
}

TEST_F(ChaosSuiteTest, SyntheticRetryFaultPreservesResults)
{
    // The synthetic retry fault fires on first attempts only and
    // extends the budget by one, so even at certainty it must change
    // nothing about the suite's results.
    const auto clean = [this] {
        sim::TraceSuiteRunner runner(baseOptions(1));
        return render(runner.run());
    }();

    auto config = always(11);
    config.only = {"retry.transient"};
    const auto chaotic = chaosRun(config, 1);

    EXPECT_EQ(chaotic.first, clean);
    ASSERT_EQ(chaotic.second.count("retry.transient"), 1u);
    EXPECT_GT(chaotic.second.at("retry.transient").fired, 0u);
}

TEST_F(ChaosSuiteTest, StoreFaultsSurfaceAsRecoverableMisses)
{
    // With an artifact store attached, store hazard points are
    // reached, and the run still completes with the same report as a
    // chaos-off run over the same fresh store (store faults are
    // recoverable: a torn insert or checksum mismatch is a miss).
    const auto storeRun = [this](bool chaos, const std::string &dir) {
        if (chaos) {
            auto config = always(13);
            config.only = {"store.insert.torn-rename",
                           "store.fetch.checksum-mismatch"};
            config.fireProbability = 0.5;
            util::chaos::configure(config);
        }
        auto options = baseOptions(1);
        store::StoreOptions store_options;
        store_options.directory = directory_ + "/" + dir;
        options.store =
            std::make_shared<store::ArtifactStore>(store_options);
        sim::TraceSuiteRunner runner(std::move(options));
        const std::string text = render(runner.run());
        auto counters = util::chaos::counters();
        util::chaos::disable();
        return std::make_pair(text, std::move(counters));
    };

    const auto chaotic = storeRun(true, "store-chaos");
    const auto clean = storeRun(false, "store-clean");
    EXPECT_EQ(chaotic.first, clean.first);

    std::uint64_t reached = 0;
    for (const char *section :
         {"store.insert.torn-rename", "store.fetch.checksum-mismatch"})
        if (chaotic.second.count(section))
            reached += chaotic.second.at(section).reached;
    EXPECT_GT(reached, 0u);
}

} // anonymous namespace
