/**
 * @file
 * Property and fuzz tests across module boundaries: randomized
 * program generation obeys engine invariants, the variable length
 * path predictor degenerates exactly to the fixed length one under a
 * constant assignment, and simulators accumulate across runs.
 */

#include <gtest/gtest.h>

#include "core/path_predictor.h"
#include "predictors/gshare.h"
#include "sim/simulator.h"
#include "trace/trace_stats.h"
#include "util/rng.h"
#include "workload/engine.h"
#include "workload/generator.h"

namespace {

using namespace vlp;
using namespace vlp::workload;

/** Draw a random-but-sane StructureParams from a fuzz seed. */
StructureParams
fuzzParams(std::uint64_t seed)
{
    util::Rng rng(seed);
    StructureParams params;
    params.structureSeed = rng.next();
    params.targetStaticCond =
        static_cast<unsigned>(rng.nextInRange(60, 2000));
    params.targetStaticInd =
        static_cast<unsigned>(rng.nextInRange(1, 60));
    params.loopWeight = 0.1 + rng.nextDouble() * 0.5;
    params.pathWeight = 0.05 + rng.nextDouble() * 0.4;
    params.patternWeight = 0.05 + rng.nextDouble() * 0.3;
    params.biasedWeight = 0.05 + rng.nextDouble() * 0.5;
    params.condNoise = rng.nextDouble() * 0.1;
    params.tripMin = static_cast<unsigned>(rng.nextInRange(1, 8));
    params.tripMax = params.tripMin
        + static_cast<unsigned>(rng.nextInRange(0, 60));
    params.dispatchLoops =
        static_cast<unsigned>(rng.nextInRange(0, 4));
    params.dispatchFanMin =
        static_cast<unsigned>(rng.nextInRange(2, 16));
    params.dispatchFanMax = params.dispatchFanMin
        + static_cast<unsigned>(rng.nextInRange(0, 32));
    params.indCallSites =
        static_cast<unsigned>(rng.nextInRange(0, 8));
    params.utilFunctions =
        static_cast<unsigned>(rng.nextInRange(1, 20));
    params.phaseFunctions =
        static_cast<unsigned>(rng.nextInRange(1, 12));
    params.phaseCallsMin = 2;
    params.phaseCallsMax =
        static_cast<unsigned>(rng.nextInRange(2, 24));
    return params;
}

class GeneratorFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GeneratorFuzz, GeneratedProgramsRunCleanly)
{
    const StructureParams params = fuzzParams(GetParam());
    Program program = generateProgram(params);

    // Structural invariants beyond what finalize() validated.
    ASSERT_FALSE(program.blocks().empty());
    EXPECT_GE(program.staticIndirects(), 1u);
    EXPECT_LE(program.staticIndirects(), params.targetStaticInd);

    // Execute and check trace invariants.
    ExecutionEngine engine(program, InputSet{GetParam() * 7 + 1});
    RunLimits limits;
    limits.conditionalBudget = 30'000;
    const std::uint64_t first_addr = program.blocks().front().addr;
    const std::uint64_t last_addr = program.blocks().back().addr;

    trace::TraceStats stats;
    std::int64_t call_depth = 0;
    engine.run(limits, [&](const trace::BranchRecord &record) {
        stats.observe(record);
        // Every pc and destination stays inside the text segment.
        ASSERT_GE(record.pc, first_addr);
        ASSERT_LE(record.pc, last_addr);
        ASSERT_GE(record.nextPc, first_addr);
        ASSERT_LE(record.nextPc, last_addr);
        // Non-conditional records are always "taken".
        if (!record.isConditional()) {
            ASSERT_TRUE(record.taken);
        }
        // Returns never outnumber calls.
        if (record.isCall())
            ++call_depth;
        if (record.isReturn()) {
            --call_depth;
            ASSERT_GE(call_depth, 0);
        }
    });

    EXPECT_GE(stats.dynamicConditional() + 8,
              limits.conditionalBudget);
    // Every branch kind count is consistent with the static program.
    EXPECT_LE(stats.staticConditional(),
              program.staticConditionals());
    EXPECT_LE(stats.staticIndirect(), program.staticIndirects());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(VlpFlpEquivalence, ConstantAssignmentMatchesFixedLength)
{
    // A VLP predictor whose every branch is assigned length L must
    // behave *identically* to the FLP predictor with fixed length L.
    StructureParams params = fuzzParams(99);
    Program program = generateProgram(params);
    ExecutionEngine engine(program, InputSet{3});
    RunLimits limits;
    limits.conditionalBudget = 40'000;
    auto trace = engine.runToTrace(limits);

    for (const unsigned length : {1u, 4u, 11u, 32u}) {
        core::PathConditionalPredictor flp(12, length);
        core::HashAssignment assignment(length); // default only
        core::PathConditionalPredictor vlp(12, assignment);

        sim::Simulator simulator;
        simulator.addConditional(&flp);
        simulator.addConditional(&vlp);
        trace.reset();
        simulator.run(trace);

        const auto results = simulator.conditionalResults();
        EXPECT_EQ(results[0].mispredictions, results[1].mispredictions)
            << "length " << length;
    }
}

TEST(VlpFlpEquivalence, IndirectConstantAssignmentMatches)
{
    StructureParams params = fuzzParams(123);
    params.dispatchLoops = 2;
    Program program = generateProgram(params);
    ExecutionEngine engine(program, InputSet{5});
    RunLimits limits;
    limits.conditionalBudget = 40'000;
    auto trace = engine.runToTrace(limits);

    core::PathIndirectPredictor flp(9, 7);
    core::PathIndirectPredictor vlp(9, core::HashAssignment(7));
    sim::Simulator simulator;
    simulator.addIndirect(&flp);
    simulator.addIndirect(&vlp);
    simulator.run(trace);
    const auto results = simulator.indirectResults();
    ASSERT_GT(results[0].branches, 0u);
    EXPECT_EQ(results[0].mispredictions, results[1].mispredictions);
}

TEST(SimulatorAccumulation, MultipleRunsAddUp)
{
    StructureParams params = fuzzParams(7);
    Program program = generateProgram(params);
    RunLimits limits;
    limits.conditionalBudget = 10'000;

    ExecutionEngine engine_a(program, InputSet{11});
    auto trace_a = engine_a.runToTrace(limits);
    ExecutionEngine engine_b(program, InputSet{12});
    auto trace_b = engine_b.runToTrace(limits);

    pred::GsharePredictor continuous(12);
    sim::Simulator accumulated;
    accumulated.addConditional(&continuous);
    accumulated.run(trace_a);
    const auto after_first = accumulated.conditionalResults()[0];
    accumulated.run(trace_b);
    const auto after_both = accumulated.conditionalResults()[0];

    EXPECT_GT(after_first.branches, 0u);
    EXPECT_EQ(after_both.branches, after_first.branches * 2);
    EXPECT_GE(after_both.mispredictions, after_first.mispredictions);
}

TEST(EngineDeterminism, IdenticalAcrossEngineInstances)
{
    // Fuzzed configurations stay deterministic: two engines over two
    // independently generated (but identical-parameter) programs give
    // byte-identical traces.
    const StructureParams params = fuzzParams(31);
    Program first = generateProgram(params);
    Program second = generateProgram(params);
    RunLimits limits;
    limits.conditionalBudget = 20'000;
    auto trace_a =
        ExecutionEngine(first, InputSet{77}).runToTrace(limits);
    auto trace_b =
        ExecutionEngine(second, InputSet{77}).runToTrace(limits);
    EXPECT_EQ(trace_a.records(), trace_b.records());
}

} // anonymous namespace
