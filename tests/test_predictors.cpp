/**
 * @file
 * Unit tests for the baseline predictors: gshare, bimodal, two-level,
 * hybrid, target caches, BTB, RAS, cascaded, and DHLF.
 */

#include <gtest/gtest.h>
#include <memory>

#include "predictors/bimodal.h"
#include "predictors/btb.h"
#include "predictors/budget.h"
#include "predictors/cascaded.h"
#include "predictors/dhlf.h"
#include "predictors/gshare.h"
#include "predictors/hybrid.h"
#include "predictors/ras.h"
#include "predictors/target_cache.h"
#include "predictors/two_level.h"
#include "util/rng.h"

namespace {

using namespace vlp;
using namespace vlp::pred;
using trace::BranchKind;
using trace::BranchRecord;

BranchRecord
cond(std::uint64_t pc, bool taken)
{
    BranchRecord record;
    record.pc = pc;
    record.nextPc = taken ? pc + 64 : pc + 4;
    record.taken = taken;
    record.kind = BranchKind::Conditional;
    return record;
}

BranchRecord
indirect(std::uint64_t pc, std::uint64_t target)
{
    BranchRecord record;
    record.pc = pc;
    record.nextPc = target;
    record.taken = true;
    record.kind = BranchKind::IndirectJump;
    return record;
}

/** Feed a conditional stream; return mispredictions over the last
 *  @p measured records. */
template <typename Predictor, typename Next>
unsigned
drive(Predictor &predictor, unsigned total, unsigned measured,
      Next next)
{
    unsigned misses = 0;
    for (unsigned i = 0; i < total; ++i) {
        const BranchRecord record = next(i);
        if (record.isConditional()) {
            const bool predicted = predictor.predict(record);
            if (i >= total - measured && predicted != record.taken)
                ++misses;
            predictor.update(record);
        }
        predictor.observe(record);
    }
    return misses;
}

// --- budget helpers ---------------------------------------------------

TEST(Budget, ConditionalSizing)
{
    EXPECT_EQ(conditionalIndexBits(1024), 12u);
    EXPECT_EQ(conditionalIndexBits(4096), 14u);
    EXPECT_EQ(conditionalIndexBits(16384), 16u);
    EXPECT_EQ(conditionalIndexBits(262144), 20u);
    EXPECT_EQ(conditionalTableBytes(14), 4096u);
    EXPECT_THROW(conditionalIndexBits(1000), std::runtime_error);
    EXPECT_THROW(conditionalIndexBits(0), std::runtime_error);
}

TEST(Budget, IndirectSizing)
{
    EXPECT_EQ(indirectIndexBits(512), 7u);
    EXPECT_EQ(indirectIndexBits(2048), 9u);
    EXPECT_EQ(indirectIndexBits(32768), 13u);
    EXPECT_EQ(indirectTableBytes(9), 2048u);
    EXPECT_THROW(indirectIndexBits(2), std::runtime_error);
    EXPECT_THROW(indirectIndexBits(3000), std::runtime_error);
}

TEST(Budget, WidenTarget)
{
    EXPECT_EQ(widenTarget(0x1234, 0xabcd000000000000ULL),
              0xabcd000000001234ULL);
    EXPECT_EQ(widenTarget(0xffffffff, 0), 0xffffffffULL);
}

// --- gshare -----------------------------------------------------------

TEST(Gshare, LearnsAlternation)
{
    GsharePredictor gshare(10);
    const unsigned misses = drive(gshare, 1000, 500, [](unsigned i) {
        return cond(0x400000, i % 2 == 0);
    });
    EXPECT_EQ(misses, 0u);
}

TEST(Gshare, LearnsGlobalCorrelation)
{
    // Branch B's outcome equals branch A's previous outcome.
    GsharePredictor gshare(12);
    util::Rng rng(5);
    bool a_outcome = false;
    unsigned misses = 0;
    for (unsigned i = 0; i < 4000; ++i) {
        a_outcome = rng.nextBool(0.5);
        const BranchRecord a = cond(0x400000, a_outcome);
        gshare.predict(a);
        gshare.update(a);
        gshare.observe(a);

        const BranchRecord b = cond(0x400100, a_outcome);
        if (i >= 2000 && gshare.predict(b) != b.taken)
            ++misses;
        gshare.update(b);
        gshare.observe(b);
    }
    EXPECT_LT(misses, 20u);
}

TEST(Gshare, HistoryIgnoresNonConditionals)
{
    GsharePredictor gshare(10);
    const std::uint64_t before = gshare.history();
    gshare.observe(indirect(0x400000, 0x500000));
    BranchRecord ret;
    ret.kind = BranchKind::Return;
    gshare.observe(ret);
    EXPECT_EQ(gshare.history(), before);
    gshare.observe(cond(0x400000, true));
    EXPECT_EQ(gshare.history(), (before << 1 | 1));
}

TEST(Gshare, CustomHistoryLength)
{
    // With a shorter explicit history, only that many bits enter the
    // index; a pattern of period 4 is learnable with history 4 even
    // though the table index is 12 bits.
    GsharePredictor gshare(12, 4);
    const unsigned misses = drive(gshare, 2000, 1000, [](unsigned i) {
        return cond(0x400000, i % 4 == 0);
    });
    EXPECT_LT(misses, 10u);
}

TEST(TwoLevel, SinglePhtConfiguration)
{
    // pht_select_bits == 0: one shared PHT, pure pattern indexing.
    TwoLevelPredictor gas(HistoryScope::Global, 8, 0);
    EXPECT_EQ(gas.sizeBytes(), 256u / 4);
    const unsigned misses = drive(gas, 2000, 1000, [](unsigned i) {
        return cond(0x400000, i % 2 == 0);
    });
    EXPECT_LT(misses, 10u);
}

TEST(Gshare, SizeMatchesBudget)
{
    EXPECT_EQ(GsharePredictor(14).sizeBytes(), 4096u);
    EXPECT_EQ(GsharePredictor(12).sizeBytes(), 1024u);
    EXPECT_EQ(GsharePredictor(14).indexBits(), 14u);
}

// --- bimodal ----------------------------------------------------------

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor bimodal(10);
    const unsigned misses = drive(bimodal, 400, 200, [](unsigned) {
        return cond(0x400000, true);
    });
    EXPECT_EQ(misses, 0u);
}

TEST(Bimodal, SeparateCountersPerAddress)
{
    BimodalPredictor bimodal(10);
    for (int i = 0; i < 10; ++i) {
        const BranchRecord t = cond(0x400000, true);
        const BranchRecord n = cond(0x400100, false);
        bimodal.predict(t);
        bimodal.update(t);
        bimodal.predict(n);
        bimodal.update(n);
    }
    EXPECT_TRUE(bimodal.predict(cond(0x400000, true)));
    EXPECT_FALSE(bimodal.predict(cond(0x400100, true)));
}

TEST(Bimodal, CannotLearnAlternation)
{
    BimodalPredictor bimodal(10);
    const unsigned misses = drive(bimodal, 1000, 500, [](unsigned i) {
        return cond(0x400000, i % 2 == 0);
    });
    // A 2-bit counter oscillates on strict alternation.
    EXPECT_GT(misses, 200u);
}

// --- two-level --------------------------------------------------------

TEST(TwoLevel, GAsLearnsPattern)
{
    TwoLevelPredictor gas(HistoryScope::Global, 8, 2);
    const unsigned misses = drive(gas, 2000, 1000, [](unsigned i) {
        return cond(0x400000, i % 3 == 0); // 100100100...
    });
    EXPECT_LT(misses, 10u);
    EXPECT_EQ(gas.name(), "GAs");
}

TEST(TwoLevel, PAsIsolatesBranchHistories)
{
    // Two interleaved branches with per-branch alternation: a global
    // scheme sees a constant combined pattern, a per-address scheme
    // sees clean per-branch patterns. Both must learn this one, but
    // the per-address histories must differ.
    TwoLevelPredictor pas(HistoryScope::PerAddress, 8, 2, 8);
    const unsigned misses = drive(pas, 2000, 1000, [](unsigned i) {
        const bool first = i % 2 == 0;
        return cond(first ? 0x400000 : 0x400100,
                    first ? (i / 2) % 2 == 0 : (i / 2) % 2 != 0);
    });
    EXPECT_LT(misses, 10u);
    EXPECT_EQ(pas.name(), "PAs");
}

TEST(TwoLevel, SizeCountsSecondLevel)
{
    TwoLevelPredictor gas(HistoryScope::Global, 10, 4);
    EXPECT_EQ(gas.sizeBytes(), (std::size_t{1} << 14) / 4);
}

// --- hybrid -----------------------------------------------------------

TEST(Hybrid, SelectsBetterComponent)
{
    // Alternating branch: gshare learns it, bimodal cannot. The
    // selector must converge on gshare.
    HybridPredictor hybrid(std::make_unique<GsharePredictor>(10),
                           std::make_unique<BimodalPredictor>(10), 10);
    const unsigned misses = drive(hybrid, 2000, 1000, [](unsigned i) {
        return cond(0x400000, i % 2 == 0);
    });
    EXPECT_LT(misses, 10u);
}

TEST(Hybrid, NameAndSize)
{
    HybridPredictor hybrid(std::make_unique<GsharePredictor>(10),
                           std::make_unique<BimodalPredictor>(10), 10);
    EXPECT_EQ(hybrid.name(), "hybrid(gshare+bimodal)");
    EXPECT_EQ(hybrid.sizeBytes(),
              GsharePredictor(10).sizeBytes()
                  + BimodalPredictor(10).sizeBytes() + 256u);
}

// --- target caches ----------------------------------------------------

TEST(PatternTargetCache, LearnsOutcomeCorrelatedTargets)
{
    // The indirect target depends on the direction of the preceding
    // conditional branch.
    PatternTargetCache cache(8);
    util::Rng rng(11);
    unsigned misses = 0;
    for (unsigned i = 0; i < 4000; ++i) {
        const bool direction = rng.nextBool(0.5);
        const BranchRecord guard = cond(0x400000, direction);
        cache.observe(guard);
        const BranchRecord jump =
            indirect(0x400200, direction ? 0x500000 : 0x600000);
        if (i >= 2000 && cache.predict(jump) != jump.nextPc)
            ++misses;
        cache.update(jump);
        cache.observe(jump);
    }
    EXPECT_LT(misses, 20u);
}

TEST(PathTargetCache, LearnsFirstOrderTargetChains)
{
    // Next target is a deterministic function of the previous target.
    // Targets are spaced 8 bytes apart so the recorded low-order
    // chunk bits actually distinguish them.
    PathTargetCache cache(8, 4);
    unsigned misses = 0;
    unsigned state = 0;
    for (unsigned i = 0; i < 4000; ++i) {
        state = (state * 13 + 7) % 5;
        const BranchRecord jump =
            indirect(0x400200, 0x500000 + state * 8);
        if (i >= 2000 && cache.predict(jump) != jump.nextPc)
            ++misses;
        cache.update(jump);
        cache.observe(jump);
    }
    EXPECT_LT(misses, 20u);
}

TEST(TargetCaches, SizeBytes)
{
    EXPECT_EQ(PatternTargetCache(9).sizeBytes(), 2048u);
    EXPECT_EQ(PathTargetCache(9).sizeBytes(), 2048u);
}

// --- BTB --------------------------------------------------------------

TEST(Btb, MonomorphicPerfectAfterFirst)
{
    BtbPredictor btb(8);
    const BranchRecord jump = indirect(0x400000, 0x500000);
    btb.predict(jump);
    btb.update(jump);
    EXPECT_EQ(btb.predict(jump), 0x500000u);
}

TEST(Btb, PolymorphicThrashes)
{
    BtbPredictor btb(8);
    unsigned misses = 0;
    for (unsigned i = 0; i < 1000; ++i) {
        const BranchRecord jump =
            indirect(0x400000, i % 2 ? 0x500000 : 0x600000);
        if (btb.predict(jump) != jump.nextPc)
            ++misses;
        btb.update(jump);
    }
    EXPECT_GT(misses, 900u);
}

// --- RAS --------------------------------------------------------------

TEST(Ras, LifoOrder)
{
    ReturnAddressStack ras(8);
    ras.push(100);
    ras.push(200);
    ras.push(300);
    EXPECT_EQ(ras.occupancy(), 3u);
    EXPECT_EQ(ras.predictAndPop(), 300u);
    EXPECT_EQ(ras.predictAndPop(), 200u);
    EXPECT_EQ(ras.predictAndPop(), 100u);
    EXPECT_EQ(ras.occupancy(), 0u);
}

TEST(Ras, UnderflowPredictsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.predictAndPop(), 0u);
}

TEST(Ras, OverflowWrapsOldestEntries)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    EXPECT_EQ(ras.occupancy(), 2u);
    EXPECT_EQ(ras.predictAndPop(), 3u);
    EXPECT_EQ(ras.predictAndPop(), 2u);
    EXPECT_EQ(ras.predictAndPop(), 0u); // 1 was lost
}

TEST(Ras, SizeBytes)
{
    EXPECT_EQ(ReturnAddressStack(32).sizeBytes(), 256u);
}

// --- cascaded ---------------------------------------------------------

TEST(Cascaded, MonomorphicStaysInStageOne)
{
    CascadedPredictor cascaded(8, 8);
    const BranchRecord jump = indirect(0x400000, 0x500000);
    unsigned misses = 0;
    for (int i = 0; i < 100; ++i) {
        if (cascaded.predict(jump) != jump.nextPc)
            ++misses;
        cascaded.update(jump);
        cascaded.observe(jump);
    }
    EXPECT_LE(misses, 1u);
}

TEST(Cascaded, BeatsBtbOnHistoryDependentTargets)
{
    CascadedPredictor cascaded(8, 10);
    BtbPredictor btb(8);
    unsigned cascaded_misses = 0, btb_misses = 0;
    unsigned state = 0;
    for (unsigned i = 0; i < 8000; ++i) {
        state = (state * 13 + 7) % 4;
        // 8-byte spacing keeps the targets distinguishable in the
        // 3-bit history chunks.
        const BranchRecord jump =
            indirect(0x400000, 0x500000 + state * 8);
        if (i >= 4000) {
            cascaded_misses +=
                cascaded.predict(jump) != jump.nextPc ? 1 : 0;
            btb_misses += btb.predict(jump) != jump.nextPc ? 1 : 0;
        } else {
            cascaded.predict(jump);
            btb.predict(jump);
        }
        cascaded.update(jump);
        cascaded.observe(jump);
        btb.update(jump);
    }
    EXPECT_LT(cascaded_misses * 4, btb_misses);
}

// --- DHLF -------------------------------------------------------------

TEST(Dhlf, LengthStaysInBounds)
{
    DhlfGsharePredictor dhlf(10, 64);
    util::Rng rng(3);
    for (unsigned i = 0; i < 20000; ++i) {
        const BranchRecord record =
            cond(0x400000 + (i % 16) * 4, rng.nextBool(0.5));
        dhlf.predict(record);
        dhlf.update(record);
        dhlf.observe(record);
        EXPECT_LE(dhlf.currentLength(), 10u);
    }
}

TEST(Dhlf, StillLearnsEasyPatterns)
{
    DhlfGsharePredictor dhlf(10, 256);
    const unsigned misses = drive(dhlf, 4000, 1000, [](unsigned i) {
        return cond(0x400000, i % 2 == 0);
    });
    EXPECT_LT(misses, 100u);
}

} // anonymous namespace
