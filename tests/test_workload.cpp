/**
 * @file
 * Unit tests for the synthetic workload substrate: behaviour models,
 * program construction/validation, and the execution engine.
 */

#include <gtest/gtest.h>

#include "trace/trace_stats.h"
#include "workload/behavior.h"
#include "workload/engine.h"
#include "workload/program.h"

namespace {

using namespace vlp;
using namespace vlp::workload;

/** Context with writable histories for driving behaviours directly. */
struct TestContext
{
    std::uint64_t path[pathHistoryDepth] = {};
    util::Rng rng{12345};
    BehaviorContext context;

    TestContext()
    {
        context.pathHistory = path;
        context.rng = &rng;
    }
};

TEST(LoopBehavior, TakenTripMinusOneTimes)
{
    TestContext ctx;
    LoopBehavior loop(5, 5, false); // fixed trip of 5
    for (int traversal = 0; traversal < 4; ++traversal) {
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(loop.evaluate(ctx.context)) << traversal;
        EXPECT_FALSE(loop.evaluate(ctx.context)) << traversal;
    }
}

TEST(LoopBehavior, TripScaleExtendsLoops)
{
    TestContext ctx;
    ctx.context.tripScale = 2.0;
    LoopBehavior loop(4, 4, false);
    int taken = 0;
    while (loop.evaluate(ctx.context))
        ++taken;
    EXPECT_EQ(taken, 7); // trip 8 = 7 taken + 1 exit
}

TEST(LoopBehavior, ResetClearsProgress)
{
    TestContext ctx;
    LoopBehavior loop(3, 3, false);
    EXPECT_TRUE(loop.evaluate(ctx.context));
    loop.reset();
    // Fresh trip: taken twice then exit.
    EXPECT_TRUE(loop.evaluate(ctx.context));
    EXPECT_TRUE(loop.evaluate(ctx.context));
    EXPECT_FALSE(loop.evaluate(ctx.context));
}

TEST(PathCorrelatedBehavior, DeterministicGivenPath)
{
    TestContext ctx;
    PathCorrelatedBehavior behavior(3, false, 0.0, 777);
    ctx.path[2] = 0x1234;
    const bool first = behavior.evaluate(ctx.context);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(behavior.evaluate(ctx.context), first);
}

TEST(PathCorrelatedBehavior, DependsOnlyOnDepthToken)
{
    TestContext ctx;
    PathCorrelatedBehavior behavior(3, false, 0.0, 777);
    ctx.path[2] = 0x1234;
    const bool baseline = behavior.evaluate(ctx.context);
    // Changing other tokens does not affect the outcome.
    ctx.path[0] = 0xdead;
    ctx.path[1] = 0xbeef;
    ctx.path[5] = 0xffff;
    EXPECT_EQ(behavior.evaluate(ctx.context), baseline);
    // Changing the determining token can change it; over many token
    // values both outcomes must occur.
    bool saw_true = false, saw_false = false;
    for (std::uint64_t token = 0; token < 64; ++token) {
        ctx.path[2] = token * 4096;
        (behavior.evaluate(ctx.context) ? saw_true : saw_false) = true;
    }
    EXPECT_TRUE(saw_true);
    EXPECT_TRUE(saw_false);
}

TEST(PathCorrelatedBehavior, DualUsesMidpointToken)
{
    TestContext ctx;
    PathCorrelatedBehavior behavior(8, true, 0.0, 99);
    ctx.path[7] = 0x42;
    ctx.path[3] = 0x1;
    const bool baseline = behavior.evaluate(ctx.context);
    // Flipping the midpoint token (index (8-1)/2 == 3) may flip the
    // outcome; scan until it does.
    bool flipped = false;
    for (std::uint64_t token = 0; token < 256 && !flipped; ++token) {
        ctx.path[3] = token * 64;
        flipped = behavior.evaluate(ctx.context) != baseline;
    }
    EXPECT_TRUE(flipped);
}

TEST(PathCorrelatedBehavior, NoiseFlips)
{
    TestContext ctx;
    PathCorrelatedBehavior behavior(1, false, 0.5, 5);
    int changes = 0;
    const bool baseline =
        PathCorrelatedBehavior(1, false, 0.0, 5).evaluate(ctx.context);
    for (int i = 0; i < 2000; ++i)
        changes += behavior.evaluate(ctx.context) != baseline ? 1 : 0;
    EXPECT_NEAR(changes / 2000.0, 0.5, 0.06);
}

TEST(PatternCorrelatedBehavior, DeterministicGivenPattern)
{
    TestContext ctx;
    PatternCorrelatedBehavior behavior(4, 0.0, 31);
    ctx.context.outcomeHistory = 0b1010;
    const bool first = behavior.evaluate(ctx.context);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(behavior.evaluate(ctx.context), first);
    // Bits beyond the depth are ignored.
    ctx.context.outcomeHistory = 0b111010;
    EXPECT_EQ(behavior.evaluate(ctx.context), first);
    // Both outcomes occur across patterns.
    bool saw_true = false, saw_false = false;
    for (std::uint64_t pattern = 0; pattern < 16; ++pattern) {
        ctx.context.outcomeHistory = pattern;
        (behavior.evaluate(ctx.context) ? saw_true : saw_false) = true;
    }
    EXPECT_TRUE(saw_true);
    EXPECT_TRUE(saw_false);
}

TEST(BiasedBehavior, IidFrequencyMatchesBias)
{
    TestContext ctx;
    BiasedBehavior behavior(0.2);
    int taken = 0;
    for (int i = 0; i < 50000; ++i)
        taken += behavior.evaluate(ctx.context) ? 1 : 0;
    EXPECT_NEAR(taken / 50000.0, 0.2, 0.02);
}

TEST(BiasedBehavior, StickyHoldsOutcome)
{
    TestContext ctx;
    BiasedBehavior behavior(0.5, 128);
    // Count outcome flips over 10000 executions: with window ~128 the
    // flip count must be near 10000/128 * P(flip) << iid's ~5000.
    bool last = behavior.evaluate(ctx.context);
    int flips = 0;
    for (int i = 0; i < 10000; ++i) {
        const bool now = behavior.evaluate(ctx.context);
        flips += now != last ? 1 : 0;
        last = now;
    }
    EXPECT_LT(flips, 200);
    EXPECT_GT(flips, 5);
}

TEST(MarkovBehavior, DeterministicTransitions)
{
    TestContext a, b;
    MarkovBehavior first(2, 0.0, 42);
    MarkovBehavior second(2, 0.0, 42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(first.evaluate(a.context, 16),
                  second.evaluate(b.context, 16));
    }
}

TEST(MarkovBehavior, ResetRestartsSequence)
{
    TestContext ctx;
    MarkovBehavior behavior(3, 0.0, 7);
    std::vector<std::size_t> first;
    for (int i = 0; i < 10; ++i)
        first.push_back(behavior.evaluate(ctx.context, 8));
    behavior.reset();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(behavior.evaluate(ctx.context, 8), first[i]);
}

TEST(PathDispatchBehavior, TargetInRangeAndDeterministic)
{
    TestContext ctx;
    PathDispatchBehavior behavior(2, 0.0, 11);
    ctx.path[1] = 0x4242;
    const std::size_t first = behavior.evaluate(ctx.context, 7);
    EXPECT_LT(first, 7u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(behavior.evaluate(ctx.context, 7), first);
}

TEST(RandomDispatchBehavior, SkewedButCoversRange)
{
    TestContext ctx;
    RandomDispatchBehavior behavior(1.2);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[behavior.evaluate(ctx.context, 8)];
    EXPECT_GT(counts[0], counts[7]);
    for (int count : counts)
        EXPECT_GT(count, 0);
}

TEST(ConcentratedTarget, InRangeAndSkewed)
{
    std::vector<int> counts(16, 0);
    util::Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        const std::size_t target = concentratedTarget(rng.next(), 16);
        ASSERT_LT(target, 16u);
        ++counts[target];
    }
    // The cubed-uniform map concentrates strongly on index 0.
    EXPECT_GT(counts[0], counts[15] * 4);
}

TEST(HashPath, DependsOnAllTokens)
{
    std::uint64_t path[pathHistoryDepth] = {1, 2, 3, 4};
    const std::uint64_t base = hashPath(path, 4);
    path[3] = 5;
    EXPECT_NE(hashPath(path, 4), base);
    path[3] = 4;
    EXPECT_EQ(hashPath(path, 4), base);
}

// --- Program construction -------------------------------------------

TEST(ProgramBuilder, MinimalValidProgram)
{
    ProgramBuilder builder;
    const FuncId main_func = builder.beginFunction();
    const BlockId entry = builder.addBlock();
    builder.setJump(entry, entry); // main loops forever
    builder.endFunction();
    Program program = builder.finalize(main_func);

    EXPECT_EQ(program.blocks().size(), 1u);
    EXPECT_EQ(program.mainFunction(), main_func);
    EXPECT_EQ(program.blockAddr(0), textBase);
}

TEST(ProgramBuilder, AddressesAreContiguousWords)
{
    ProgramBuilder builder;
    const FuncId func = builder.beginFunction();
    const BlockId a = builder.addBlock();
    const BlockId b = builder.addBlock();
    builder.setJump(b, a);
    builder.endFunction();
    Program program = builder.finalize(func);
    EXPECT_EQ(program.blockAddr(b), program.blockAddr(a) + blockBytes);
}

TEST(ProgramBuilder, StaticCounts)
{
    ProgramBuilder builder;
    const FuncId func = builder.beginFunction();
    const BlockId cond = builder.addBlock();
    const BlockId mid = builder.addBlock();
    const BlockId sw = builder.addBlock();
    const BlockId handler = builder.addBlock();
    const BlockId ret = builder.addBlock();
    builder.setCond(cond, ret, std::make_unique<BiasedBehavior>(0.5));
    (void)mid;
    builder.setIndirectJump(sw, {handler, ret},
                            std::make_unique<RandomDispatchBehavior>(1.0));
    builder.setReturn(ret);
    builder.endFunction();
    EXPECT_EQ(builder.staticConditionals(), 1u);
    EXPECT_EQ(builder.staticIndirects(), 1u);

    Program program = builder.finalize(func);
    EXPECT_EQ(program.staticConditionals(), 1u);
    EXPECT_EQ(program.staticIndirects(), 1u);
}

TEST(ProgramBuilder, RejectsCondAsLastBlock)
{
    ProgramBuilder builder;
    const FuncId func = builder.beginFunction();
    const BlockId cond = builder.addBlock();
    builder.setCond(cond, cond, std::make_unique<BiasedBehavior>(0.5));
    builder.endFunction();
    EXPECT_THROW(builder.finalize(func), std::runtime_error);
}

TEST(ProgramBuilder, RejectsFallThroughOffEnd)
{
    ProgramBuilder builder;
    const FuncId func = builder.beginFunction();
    builder.addBlock(); // fall-through with no successor
    builder.endFunction();
    EXPECT_THROW(builder.finalize(func), std::runtime_error);
}

TEST(ProgramBuilder, RejectsCrossFunctionJump)
{
    ProgramBuilder builder;
    const FuncId first = builder.beginFunction();
    const BlockId ret = builder.addBlock();
    builder.setReturn(ret);
    builder.endFunction();
    (void)first;

    const FuncId second = builder.beginFunction();
    const BlockId jump = builder.addBlock();
    builder.setJump(jump, ret); // leaves its function
    builder.endFunction();
    EXPECT_THROW(builder.finalize(second), std::runtime_error);
}

TEST(ProgramBuilder, RejectsDanglingCallee)
{
    ProgramBuilder builder;
    const FuncId func = builder.beginFunction();
    const BlockId call = builder.addBlock();
    const BlockId ret = builder.addBlock();
    builder.setCall(call, 57); // no such function
    builder.setReturn(ret);
    builder.endFunction();
    EXPECT_THROW(builder.finalize(func), std::runtime_error);
}

TEST(ProgramBuilder, RejectsMissingBehavior)
{
    ProgramBuilder builder;
    builder.beginFunction();
    const BlockId cond = builder.addBlock();
    EXPECT_THROW(builder.setCond(cond, cond, nullptr),
                 std::runtime_error);
    EXPECT_THROW(builder.setIndirectJump(cond, {cond}, nullptr),
                 std::runtime_error);
    EXPECT_THROW(builder.setIndirectJump(
                     cond, {},
                     std::make_unique<RandomDispatchBehavior>(1.0)),
                 std::runtime_error);
}

TEST(ProgramBuilder, RejectsEmptyFunction)
{
    ProgramBuilder builder;
    builder.beginFunction();
    EXPECT_THROW(builder.endFunction(), std::runtime_error);
}

TEST(ProgramBuilder, RejectsNestedFunctions)
{
    ProgramBuilder builder;
    builder.beginFunction();
    EXPECT_THROW(builder.beginFunction(), std::runtime_error);
}

TEST(ProgramBuilder, RejectsUnknownMain)
{
    ProgramBuilder builder;
    const FuncId func = builder.beginFunction();
    const BlockId entry = builder.addBlock();
    builder.setJump(entry, entry);
    builder.endFunction();
    (void)func;
    EXPECT_THROW(builder.finalize(12), std::runtime_error);
}

// --- Execution engine -----------------------------------------------

/** Tiny program: main calls a leaf containing a fixed-trip loop. */
Program
loopCallProgram(unsigned trip)
{
    ProgramBuilder builder;
    const FuncId leaf = builder.beginFunction();
    const BlockId body = builder.addBlock();
    const BlockId backedge = builder.addBlock();
    const BlockId leaf_ret = builder.addBlock();
    builder.setCond(backedge, body,
                    std::make_unique<LoopBehavior>(trip, trip, false));
    builder.setReturn(leaf_ret);
    builder.endFunction();

    const FuncId main_func = builder.beginFunction();
    const BlockId call = builder.addBlock();
    const BlockId loop = builder.addBlock();
    builder.setCall(call, leaf);
    builder.setJump(loop, call);
    builder.endFunction();
    return builder.finalize(main_func);
}

TEST(ExecutionEngine, LoopIteratesTripTimes)
{
    Program program = loopCallProgram(6);
    ExecutionEngine engine(program, InputSet{1, 1.0, 1.0});
    RunLimits limits;
    limits.conditionalBudget = 60; // 10 traversals of a trip-6 loop

    trace::TraceStats stats;
    engine.run(limits, [&stats](const trace::BranchRecord &record) {
        stats.observe(record);
    });

    EXPECT_EQ(stats.dynamicConditional(), 60u);
    // Each traversal: 5 taken back edges + 1 not-taken exit.
    EXPECT_NEAR(stats.takenRate(), 100.0 * 5 / 6, 1e-9);
    // One call per traversal; the run stops right after the 60th
    // conditional, before the final traversal's return is emitted.
    EXPECT_EQ(stats.dynamicCount(trace::BranchKind::DirectCall), 10u);
    EXPECT_EQ(stats.dynamicCount(trace::BranchKind::Return), 9u);
}

TEST(ExecutionEngine, ReturnGoesToCallSiteSuccessor)
{
    Program program = loopCallProgram(2);
    ExecutionEngine engine(program, InputSet{1, 1.0, 1.0});
    RunLimits limits;
    limits.conditionalBudget = 4;

    std::uint64_t call_pc = 0;
    std::uint64_t return_next = 0;
    engine.run(limits, [&](const trace::BranchRecord &record) {
        if (record.kind == trace::BranchKind::DirectCall && !call_pc)
            call_pc = record.pc;
        if (record.isReturn() && !return_next)
            return_next = record.nextPc;
    });
    EXPECT_EQ(return_next, call_pc + blockBytes);
}

TEST(ExecutionEngine, DeterministicPerSeed)
{
    Program a = loopCallProgram(5);
    Program b = loopCallProgram(5);
    RunLimits limits;
    limits.conditionalBudget = 500;
    auto ta = ExecutionEngine(a, InputSet{9, 1.0, 1.0})
                  .runToTrace(limits);
    auto tb = ExecutionEngine(b, InputSet{9, 1.0, 1.0})
                  .runToTrace(limits);
    EXPECT_EQ(ta.records(), tb.records());
}

TEST(ExecutionEngine, RecursionOverflowsCallStack)
{
    // A function calling itself unconditionally must hit the guard.
    ProgramBuilder builder;
    const FuncId func = builder.beginFunction();
    const BlockId call = builder.addBlock();
    const BlockId ret = builder.addBlock();
    builder.setCall(call, func); // self-recursion
    builder.setReturn(ret);
    builder.endFunction();
    Program program = builder.finalize(func);

    ExecutionEngine engine(program, InputSet{1, 1.0, 1.0});
    RunLimits limits;
    limits.recordBudget = 100000;
    EXPECT_THROW(engine.run(limits, [](const trace::BranchRecord &) {}),
                 std::runtime_error);
}

TEST(ExecutionEngine, RecordBudgetStopsRun)
{
    Program program = loopCallProgram(5);
    ExecutionEngine engine(program, InputSet{1, 1.0, 1.0});
    RunLimits limits;
    limits.conditionalBudget = 1'000'000'000;
    limits.recordBudget = 1000;
    const std::uint64_t emitted =
        engine.run(limits, [](const trace::BranchRecord &) {});
    EXPECT_EQ(emitted, 1000u);
}

TEST(ExecutionEngine, IndirectJumpStaysInTargetSet)
{
    ProgramBuilder builder;
    const FuncId main_func = builder.beginFunction();
    const BlockId dispatch = builder.addBlock();
    const BlockId h1 = builder.addBlock();
    const BlockId h2 = builder.addBlock();
    const BlockId h3 = builder.addBlock();
    builder.setIndirectJump(dispatch, {h1, h2, h3},
                            std::make_unique<RandomDispatchBehavior>(0.5));
    builder.setJump(h1, dispatch);
    builder.setJump(h2, dispatch);
    builder.setJump(h3, dispatch);
    builder.endFunction();
    Program program = builder.finalize(main_func);

    const std::uint64_t a1 = program.blockAddr(h1);
    const std::uint64_t a2 = program.blockAddr(h2);
    const std::uint64_t a3 = program.blockAddr(h3);

    ExecutionEngine engine(program, InputSet{5, 1.0, 1.0});
    RunLimits limits;
    limits.recordBudget = 2000;
    engine.run(limits, [&](const trace::BranchRecord &record) {
        if (record.kind == trace::BranchKind::IndirectJump) {
            EXPECT_TRUE(record.nextPc == a1 || record.nextPc == a2
                        || record.nextPc == a3);
        }
    });
}

} // anonymous namespace
