/**
 * @file
 * Tests for the speculative fetch-bundle front end (DESIGN.md §17).
 *
 * The contract under test has two halves. Accuracy: both FetchEngine
 * modes must reproduce the retirement-order Simulator's branch and
 * misprediction counts bit for bit, for every benchmark in the suite,
 * at any --jobs setting — speculation may move cycles around, never
 * what the tables learn. Mechanism: the checkpoint/speculate/restore
 * dance every predictor implements must be invisible, i.e. a
 * checkpoint, any amount of wrong-path speculation, and a restore must
 * leave the predictor exactly where a twin that never speculated is.
 *
 * The suite-wide equivalence runs need deterministic workload sizes,
 * so main() pins VLPSIM_SCALE before any trace generation (the same
 * pattern as test_report).
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>
#include <gtest/gtest.h>

#include "core/hfnt.h"
#include "core/path_history.h"
#include "core/path_predictor.h"
#include "predictors/elastic.h"
#include "predictors/gselect.h"
#include "predictors/gshare.h"
#include "predictors/hybrid.h"
#include "predictors/two_level.h"
#include "sim/experiment.h"
#include "sim/frontend.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "trace/trace_source.h"
#include "util/chaos.h"
#include "util/rng.h"
#include "workload/benchmarks.h"

namespace {

using namespace vlp;
using trace::BranchKind;
using trace::BranchRecord;

BranchRecord
make(BranchKind kind, std::uint64_t pc, std::uint64_t next,
     bool taken = true)
{
    BranchRecord record;
    record.pc = pc;
    record.nextPc = next;
    record.taken = taken;
    record.kind = kind;
    return record;
}

/** A mixed-kind record stream that keeps path history moving. */
BranchRecord
randomRecord(util::Rng &rng)
{
    const std::uint64_t pc = 0x400000 + (rng.nextBelow(128) << 2);
    const std::uint64_t roll = rng.nextBelow(10);
    if (roll < 6) {
        const bool taken = rng.nextBool(0.6);
        return make(BranchKind::Conditional, pc,
                    taken ? pc + 256 + (rng.nextBelow(8) << 2)
                          : pc + trace::instructionBytes,
                    taken);
    }
    if (roll < 8)
        return make(BranchKind::IndirectJump, pc,
                    0x500000 + (rng.nextBelow(16) << 2));
    if (roll == 8)
        return make(BranchKind::DirectCall, pc, 0x600000 + (pc & 0xff));
    return make(BranchKind::Return, pc, 0x400000 + (rng.nextBelow(64) << 2));
}

// ---------------------------------------------------------------------
// Suite-wide equivalence: Simulator == RetireOrder == FetchBundle,
// bit-identically, at --jobs 1 and 4.
// ---------------------------------------------------------------------

/** Flattened (branches, mispredictions) pairs across all slots. */
using Signature = std::vector<std::uint64_t>;

Signature
signatureOf(const std::vector<sim::PredictorResult> &conditional,
            const std::vector<sim::PredictorResult> &indirect,
            const sim::PredictorResult &ras)
{
    Signature out;
    for (const auto &result : conditional) {
        out.push_back(result.branches);
        out.push_back(result.mispredictions);
    }
    for (const auto &result : indirect) {
        out.push_back(result.branches);
        out.push_back(result.mispredictions);
    }
    out.push_back(ras.branches);
    out.push_back(ras.mispredictions);
    return out;
}

/** All three accuracy signatures for one workload. */
struct ModeSignatures
{
    Signature simulator;
    Signature retire;
    Signature bundle;
};

/**
 * Per-branch hash numbers without a profiling pass: a cheap
 * pc-derived assignment that still exercises every path length.
 */
core::HashAssignment
syntheticAssignment(trace::TraceSource &trace)
{
    core::HashAssignment assignment(4);
    trace.reset();
    BranchRecord record;
    while (trace.next(record))
        if (record.isConditional())
            assignment.assign(record.pc,
                              1
                                  + static_cast<unsigned>(record.pc >> 2)
                                      % core::maxPathLength);
    trace.reset();
    return assignment;
}

constexpr unsigned equivalenceIndexBits = 12;

/** The predictor line-up every equivalence run registers. */
struct Rig
{
    pred::GsharePredictor gshare;
    core::PathConditionalPredictor flp;
    core::PathConditionalPredictor vlp;
    core::PathIndirectPredictor indirect;

    explicit Rig(const core::HashAssignment &assignment)
        : gshare(equivalenceIndexBits), flp(equivalenceIndexBits, 6),
          vlp(equivalenceIndexBits, assignment),
          indirect(equivalenceIndexBits, 4)
    {
    }
};

ModeSignatures
runWorkload(sim::ExperimentContext &context, const std::string &name)
{
    const auto &spec = workload::findBenchmark(name);
    const auto trace = context.trace(spec, workload::InputKind::Test);
    const core::HashAssignment assignment = syntheticAssignment(*trace);
    const auto actual_number = [assignment](const BranchRecord &r) {
        return assignment.lookup(r.pc);
    };

    ModeSignatures out;
    {
        Rig rig(assignment);
        sim::Simulator simulator;
        simulator.addConditional(&rig.gshare);
        simulator.addConditional(&rig.flp);
        simulator.addConditional(&rig.vlp);
        simulator.addIndirect(&rig.indirect);
        trace->reset();
        simulator.run(*trace);
        out.simulator = signatureOf(simulator.conditionalResults(),
                                    simulator.indirectResults(),
                                    simulator.rasResult());
    }

    const auto engine_run = [&](sim::FrontendMode mode) {
        sim::FrontendParameters parameters;
        parameters.mode = mode;
        parameters.bundleWidth = 4;
        parameters.chaosIdentity = name;

        Rig rig(assignment);
        rig.flp.setBanks(2);
        rig.vlp.setBanks(4);
        core::HashFunctionNumberTable hfnt(6);
        hfnt.setBanks(2);

        sim::FetchEngine engine(parameters);
        engine.addConditional(&rig.gshare);
        engine.addConditional(&rig.flp);
        engine.addConditional(&rig.vlp);
        engine.addIndirect(&rig.indirect);
        engine.attachHfnt(2, &hfnt, actual_number);
        trace->reset();
        engine.run(*trace);
        return signatureOf(engine.conditionalResults(),
                           engine.indirectResults(), engine.rasResult());
    };
    out.retire = engine_run(sim::FrontendMode::RetireOrder);
    out.bundle = engine_run(sim::FrontendMode::FetchBundle);
    return out;
}

TEST(FrontendEquivalence, AllWorkloadsBothModesAndJobCounts)
{
    const auto names = workload::benchmarkNames();
    ASSERT_EQ(names.size(), 16u);

    const auto run_all = [&](unsigned jobs) {
        sim::ParallelRunner runner(jobs);
        return runner.map<ModeSignatures>(
            names.size(),
            [&](sim::ExperimentContext &context, std::size_t i) {
                return runWorkload(context, names[i]);
            });
    };
    const auto serial = run_all(1);
    const auto parallel = run_all(4);
    ASSERT_EQ(serial.size(), names.size());
    ASSERT_EQ(parallel.size(), names.size());

    for (std::size_t i = 0; i < names.size(); ++i) {
        SCOPED_TRACE(names[i]);
        // Non-degenerate: the workload produced branches.
        ASSERT_FALSE(serial[i].simulator.empty());
        EXPECT_GT(serial[i].simulator[0], 0u);
        // Both engine modes match the Simulator bit for bit.
        EXPECT_EQ(serial[i].retire, serial[i].simulator);
        EXPECT_EQ(serial[i].bundle, serial[i].simulator);
        // And sharding across 4 workers changes nothing.
        EXPECT_EQ(parallel[i].simulator, serial[i].simulator);
        EXPECT_EQ(parallel[i].retire, serial[i].retire);
        EXPECT_EQ(parallel[i].bundle, serial[i].bundle);
    }
}

// ---------------------------------------------------------------------
// Checkpoint/restore round trips.
// ---------------------------------------------------------------------

TEST(FrontendCheckpoint, PathIndexBankRoundTrip)
{
    core::PathHistoryOptions options;
    options.historyStack = true;
    core::PathIndexBank bank(10, options);
    core::PathIndexBank control(10, options);

    util::Rng rng(17);
    for (int i = 0; i < 200; ++i) {
        const BranchRecord record = randomRecord(rng);
        bank.observe(record);
        control.observe(record);
    }

    const auto checkpoint = bank.checkpoint();

    // Wrong path: speculative inserts, calls, and returns the control
    // bank never sees.
    util::Rng wrong(91);
    for (int i = 0; i < 50; ++i)
        bank.observe(randomRecord(wrong));
    bank.restore(checkpoint);

    for (unsigned length = 1; length <= bank.depth(); ++length) {
        EXPECT_EQ(bank.index(length), control.index(length)) << length;
        // And the incremental representation still agrees with the
        // direct recomputation after the rewind.
        EXPECT_EQ(bank.index(length), bank.directIndex(length))
            << length;
    }

    // A checkpoint is a value: restoring it again after more history
    // rewinds to the same point.
    for (int i = 0; i < 30; ++i)
        bank.observe(randomRecord(wrong));
    bank.restore(checkpoint);

    // Both banks now advance in lock step.
    for (int i = 0; i < 100; ++i) {
        const BranchRecord record = randomRecord(rng);
        bank.observe(record);
        control.observe(record);
    }
    for (unsigned length = 1; length <= bank.depth(); ++length)
        EXPECT_EQ(bank.index(length), control.index(length)) << length;
}

TEST(FrontendCheckpoint, HfntNestedCheckpointsUnwindLifo)
{
    core::HashFunctionNumberTable hfnt(4);
    util::Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t pc = rng.nextBelow(16) << 2;
        hfnt.predictNumber(pc);
        hfnt.update(pc, 1 + static_cast<unsigned>(rng.nextBelow(8)));
    }

    const auto base_table = hfnt.rawTable();
    const auto base_lookups = hfnt.lookups();
    const auto base_mismatches = hfnt.mismatches();

    const auto outer = hfnt.checkpoint();
    for (int i = 0; i < 40; ++i) {
        const std::uint64_t pc = rng.nextBelow(16) << 2;
        hfnt.predictNumber(pc);
        hfnt.update(pc, 9);
    }
    const auto mid_table = hfnt.rawTable();
    const auto mid_lookups = hfnt.lookups();
    const auto mid_mismatches = hfnt.mismatches();

    const auto inner = hfnt.checkpoint();
    for (int i = 0; i < 40; ++i) {
        const std::uint64_t pc = rng.nextBelow(16) << 2;
        hfnt.predictNumber(pc);
        hfnt.update(pc, 13);
    }

    hfnt.restore(inner);
    EXPECT_EQ(hfnt.rawTable(), mid_table);
    EXPECT_EQ(hfnt.lookups(), mid_lookups);
    EXPECT_EQ(hfnt.mismatches(), mid_mismatches);

    hfnt.restore(outer);
    EXPECT_EQ(hfnt.rawTable(), base_table);
    EXPECT_EQ(hfnt.lookups(), base_lookups);
    EXPECT_EQ(hfnt.mismatches(), base_mismatches);
}

TEST(FrontendCheckpoint, HfntDiscardKeepsWritesButOuterRestoreUnwinds)
{
    core::HashFunctionNumberTable hfnt(4);
    util::Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t pc = rng.nextBelow(16) << 2;
        hfnt.predictNumber(pc);
        hfnt.update(pc, 1 + static_cast<unsigned>(rng.nextBelow(8)));
    }
    const auto base_table = hfnt.rawTable();

    // Discard alone commits the speculative writes.
    {
        const auto checkpoint = hfnt.checkpoint();
        hfnt.predictNumber(0);
        hfnt.update(0, 31);
        const auto written = hfnt.rawTable();
        hfnt.discard(checkpoint);
        EXPECT_EQ(hfnt.rawTable(), written);
    }

    // But discarding an *inner* checkpoint must not strand the undo
    // entries the still-open outer checkpoint needs.
    const auto committed = hfnt.rawTable();
    const auto committed_lookups = hfnt.lookups();
    const auto outer = hfnt.checkpoint();
    hfnt.predictNumber(4);
    hfnt.update(4, 7);
    const auto inner = hfnt.checkpoint();
    hfnt.predictNumber(8);
    hfnt.update(8, 11);
    hfnt.discard(inner);
    hfnt.restore(outer);
    EXPECT_EQ(hfnt.rawTable(), committed);
    EXPECT_EQ(hfnt.lookups(), committed_lookups);

    // And the pre-discard state is still distinct from the original.
    EXPECT_NE(committed, base_table);
}

/**
 * Drive @p subject and @p twin over one deterministic stream; the
 * subject detours down a wrong path between update and observe every
 * few records — exactly the engine's dance — and must end up making
 * the same predictions as the twin that never speculated.
 */
void
expectSpeculationInvisible(pred::ConditionalPredictor &subject,
                           pred::ConditionalPredictor &twin)
{
    util::Rng rng(42);
    std::uint64_t divergent = 0;
    for (int i = 0; i < 4000; ++i) {
        const BranchRecord record = randomRecord(rng);
        if (record.isConditional()) {
            const bool twin_predicted = twin.predict(record);
            twin.update(record);
            const bool predicted = subject.predict(record);
            subject.update(record);
            if (predicted != twin_predicted)
                ++divergent;

            if (i % 3 == 0) {
                const pred::CheckpointPtr checkpoint =
                    subject.checkpoint();
                BranchRecord wrong = record;
                wrong.taken = !record.taken;
                wrong.nextPc = wrong.taken
                    ? record.pc + 512
                    : record.pc + trace::instructionBytes;
                subject.speculate(wrong);
                subject.speculate(make(BranchKind::Conditional,
                                       record.pc + 8, record.pc + 640));
                subject.restore(*checkpoint);
            }
        }
        twin.observe(record);
        subject.observe(record);
    }
    EXPECT_EQ(divergent, 0u);
}

TEST(FrontendCheckpoint, GshareRoundTrip)
{
    pred::GsharePredictor subject(10);
    pred::GsharePredictor twin(10);
    expectSpeculationInvisible(subject, twin);
}

TEST(FrontendCheckpoint, GselectRoundTrip)
{
    pred::GselectPredictor subject(10, 4);
    pred::GselectPredictor twin(10, 4);
    expectSpeculationInvisible(subject, twin);
}

TEST(FrontendCheckpoint, TwoLevelGlobalRoundTrip)
{
    pred::TwoLevelPredictor subject(pred::HistoryScope::Global, 8, 2);
    pred::TwoLevelPredictor twin(pred::HistoryScope::Global, 8, 2);
    expectSpeculationInvisible(subject, twin);
}

TEST(FrontendCheckpoint, TwoLevelPerAddressRoundTrip)
{
    pred::TwoLevelPredictor subject(pred::HistoryScope::PerAddress, 6, 2,
                                    4);
    pred::TwoLevelPredictor twin(pred::HistoryScope::PerAddress, 6, 2,
                                 4);
    expectSpeculationInvisible(subject, twin);
}

TEST(FrontendCheckpoint, ElasticGshareRoundTrip)
{
    pred::PatternLengthAssignment assignment;
    assignment.defaultLength = 5;
    for (int b = 0; b < 32; ++b)
        assignment.lengths[0x400000 + (b << 2)] = 1 + b % 10;
    pred::ElasticGsharePredictor subject(10, assignment);
    pred::ElasticGsharePredictor twin(10, assignment);
    expectSpeculationInvisible(subject, twin);
}

TEST(FrontendCheckpoint, HybridRoundTrip)
{
    const auto build = [] {
        return pred::HybridPredictor(
            std::make_unique<pred::GsharePredictor>(8),
            std::make_unique<pred::GselectPredictor>(8, 4), 8);
    };
    auto subject = build();
    auto twin = build();
    expectSpeculationInvisible(subject, twin);
}

TEST(FrontendCheckpoint, PathConditionalRoundTrip)
{
    core::HashAssignment assignment(3);
    for (int b = 0; b < 128; ++b)
        assignment.assign(0x400000 + (b << 2),
                          1 + b % core::maxPathLength);
    core::PathConditionalPredictor subject(10, assignment);
    core::PathConditionalPredictor twin(10, assignment);
    expectSpeculationInvisible(subject, twin);
}

TEST(FrontendCheckpoint, PathIndirectRoundTrip)
{
    core::HashAssignment assignment(2);
    for (int b = 0; b < 128; ++b)
        assignment.assign(0x400000 + (b << 2), 1 + b % 16);
    core::PathIndirectPredictor subject(10, assignment);
    core::PathIndirectPredictor twin(10, assignment);

    util::Rng rng(77);
    std::uint64_t divergent = 0;
    for (int i = 0; i < 4000; ++i) {
        const BranchRecord record = randomRecord(rng);
        if (record.isIndirect()) {
            const std::uint64_t twin_target = twin.predict(record);
            twin.update(record);
            const std::uint64_t target = subject.predict(record);
            subject.update(record);
            if (target != twin_target)
                ++divergent;

            if (i % 3 == 0) {
                const pred::CheckpointPtr checkpoint =
                    subject.checkpoint();
                BranchRecord wrong = record;
                wrong.nextPc = target ^ 0x40;
                subject.speculate(wrong);
                subject.restore(*checkpoint);
            }
        }
        twin.observe(record);
        subject.observe(record);
    }
    EXPECT_EQ(divergent, 0u);
}

// ---------------------------------------------------------------------
// Banking: bankOf() is the low bits of the table index, and bank
// conflicts split bundles.
// ---------------------------------------------------------------------

TEST(FrontendBanking, PathBankMatchesTableIndexLowBits)
{
    core::HashAssignment assignment(2);
    for (int b = 0; b < 64; ++b)
        assignment.assign(0x400000 + (b << 2),
                          1 + b % core::maxPathLength);
    core::PathConditionalPredictor vlp(10, assignment);

    // Unbanked: the engine must see "no conflicts possible".
    EXPECT_EQ(vlp.bankCount(), 0u);
    EXPECT_EQ(vlp.bankOf(make(BranchKind::Conditional, 0x400000,
                              0x400100)),
              0u);

    vlp.setBanks(4);
    EXPECT_EQ(vlp.bankCount(), 4u);

    util::Rng rng(13);
    for (int i = 0; i < 500; ++i) {
        const BranchRecord record = randomRecord(rng);
        if (record.isConditional()) {
            const unsigned length = std::min(
                assignment.lookup(record.pc), vlp.bank().depth());
            const unsigned expected =
                static_cast<unsigned>(vlp.bank().index(length)) & 3u;
            ASSERT_EQ(vlp.bankOf(record), expected);
            ASSERT_LT(vlp.bankOf(record), 4u);
        }
        vlp.observe(record);
    }
}

TEST(FrontendBanking, HfntBankFollowsEntryIndex)
{
    core::HashFunctionNumberTable hfnt(4);
    EXPECT_EQ(hfnt.banks(), 1u);
    hfnt.setBanks(4);
    EXPECT_EQ(hfnt.banks(), 4u);
    for (std::uint64_t entry = 0; entry < 64; ++entry) {
        const std::uint64_t pc = entry << 2;
        EXPECT_EQ(hfnt.bankOf(pc),
                  static_cast<unsigned>((entry & 15u) & 3u));
    }
}

TEST(FrontendBanking, SinglePortedTableSplitsEveryBundle)
{
    // Two alternating always-taken branches: a banks=1 counter table
    // forces one conditional per bundle; an unbanked table packs them.
    trace::VectorTraceSource trace;
    for (int i = 0; i < 400; ++i) {
        trace.append(make(BranchKind::Conditional, 0x400000, 0x400100));
        trace.append(make(BranchKind::Conditional, 0x400040, 0x400140));
    }

    const auto run = [&](unsigned banks) {
        sim::FrontendParameters parameters;
        parameters.mode = sim::FrontendMode::FetchBundle;
        parameters.bundleWidth = 4;
        core::PathConditionalPredictor flp(8, 4);
        if (banks != 0)
            flp.setBanks(banks);
        sim::FetchEngine engine(parameters);
        engine.addConditional(&flp);
        trace.reset();
        engine.run(trace);
        return engine.conditionalTiming(0);
    };

    const sim::FrontendResult contended = run(1);
    EXPECT_GT(contended.bankConflicts, 0u);
    // Every bundle carries exactly one branch.
    EXPECT_EQ(contended.bundles, contended.branches);

    const sim::FrontendResult ideal = run(0);
    EXPECT_EQ(ideal.bankConflicts, 0u);
    EXPECT_LT(ideal.bundles, ideal.branches);
    // Banking never changes accuracy.
    EXPECT_EQ(ideal.branches, contended.branches);
    EXPECT_EQ(ideal.mispredictions, contended.mispredictions);
}

// ---------------------------------------------------------------------
// Chaos: spurious checkpoint-restores must be invisible.
// ---------------------------------------------------------------------

TEST(FrontendChaos, SpuriousRestoresLeaveStatsUnchanged)
{
    struct Disarm
    {
        ~Disarm() { util::chaos::disable(); }
    } disarm;

    trace::VectorTraceSource trace;
    util::Rng rng(2026);
    for (int i = 0; i < 4000; ++i)
        trace.append(randomRecord(rng));

    struct Run
    {
        Signature accuracy;
        double baseCycles = 0.0;
        double mispredictCycles = 0.0;
        double repredictCycles = 0.0;
        std::uint64_t bundles = 0;
        std::uint64_t mispredictions = 0;
        std::uint64_t restores = 0;
        std::uint64_t fired = 0;
    };

    const auto run = [&](bool with_chaos) {
        if (with_chaos) {
            util::chaos::Config config;
            config.enabled = true;
            config.seed = 99;
            config.activateProbability = 1.0;
            config.fireProbability = 0.5;
            config.only = {"frontend.checkpoint.restore"};
            util::chaos::configure(config);
        } else {
            util::chaos::disable();
        }

        sim::FrontendParameters parameters;
        parameters.mode = sim::FrontendMode::FetchBundle;
        parameters.bundleWidth = 2;
        parameters.chaosIdentity = "frontend-test";
        pred::GsharePredictor gshare(10);
        core::PathConditionalPredictor flp(10, 6);
        sim::FetchEngine engine(parameters);
        engine.addConditional(&gshare);
        engine.addConditional(&flp);
        trace.reset();
        engine.run(trace);

        Run result;
        result.accuracy =
            signatureOf(engine.conditionalResults(),
                        engine.indirectResults(), engine.rasResult());
        for (std::size_t slot = 0; slot < 2; ++slot) {
            const sim::FrontendResult &timing =
                engine.conditionalTiming(slot);
            result.baseCycles += timing.baseCycles;
            result.mispredictCycles += timing.mispredictCycles;
            result.repredictCycles += timing.repredictCycles;
            result.bundles += timing.bundles;
            result.mispredictions += timing.mispredictions;
            result.restores += timing.checkpointRestores;
        }
        if (with_chaos) {
            const auto counters = util::chaos::counters();
            const auto it =
                counters.find("frontend.checkpoint.restore");
            if (it != counters.end())
                result.fired = it->second.fired;
        }
        util::chaos::disable();
        return result;
    };

    const Run clean = run(false);
    const Run chaotic = run(true);

    // The section actually injected repairs...
    EXPECT_GT(chaotic.fired, 0u);
    // ...and nothing observable moved: accuracy and every cycle
    // ledger are identical.
    EXPECT_EQ(chaotic.accuracy, clean.accuracy);
    EXPECT_DOUBLE_EQ(chaotic.baseCycles, clean.baseCycles);
    EXPECT_DOUBLE_EQ(chaotic.mispredictCycles, clean.mispredictCycles);
    EXPECT_DOUBLE_EQ(chaotic.repredictCycles, clean.repredictCycles);
    EXPECT_EQ(chaotic.bundles, clean.bundles);
    // The restore ledger balances exactly: one repair per mispredict
    // plus one per chaos firing.
    EXPECT_EQ(clean.restores, clean.mispredictions);
    EXPECT_EQ(chaotic.restores,
              chaotic.mispredictions + chaotic.fired);
}

// ---------------------------------------------------------------------
// Closed-form fallback edges.
// ---------------------------------------------------------------------

TEST(FrontendClosedForm, ZeroBranchesAndZeroWidthYieldZeroResult)
{
    sim::FrontendParameters parameters;
    const sim::FrontendResult empty =
        sim::closedFormFrontend(parameters, 0, 0, 0);
    EXPECT_DOUBLE_EQ(empty.totalCycles(), 0.0);
    EXPECT_DOUBLE_EQ(empty.ipc(5000.0), 0.0);
    EXPECT_DOUBLE_EQ(empty.branchesPerCycle(), 0.0);

    parameters.bundleWidth = 0;
    const sim::FrontendResult degenerate =
        sim::closedFormFrontend(parameters, 1000, 10, 5);
    EXPECT_DOUBLE_EQ(degenerate.totalCycles(), 0.0);
    EXPECT_DOUBLE_EQ(degenerate.ipc(5000.0), 0.0);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // The suite-wide equivalence test replays all 16 benchmarks three
    // times at two job counts; pin the scale before any workload
    // generation so the run is fast and deterministic.
    setenv("VLPSIM_SCALE", "0.05", 1);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
