/**
 * @file
 * Tests for the artifact store: key derivation, artifact codecs, the
 * on-disk store itself (hits, corruption recovery, garbage
 * collection), and the end-to-end caching contract — a warm rerun
 * must reproduce a cold run bit for bit, serial or parallel.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "sim/experiment.h"
#include "sim/parallel.h"
#include "store/artifact_store.h"
#include "store/cache_key.h"
#include "store/serialize.h"
#include "workload/benchmarks.h"

namespace {

namespace fs = std::filesystem;
using namespace vlp;
using namespace vlp::store;

/** A fresh cache directory per test, removed on teardown. */
class StoreHarness : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        directory_ = testing::TempDir() + "/vlpsim_store_"
            + ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        fs::remove_all(directory_);
    }

    void TearDown() override { fs::remove_all(directory_); }

    ArtifactStore open(std::uint64_t max_bytes = 0)
    {
        StoreOptions options;
        options.directory = directory_;
        options.maxBytes = max_bytes;
        return ArtifactStore(options);
    }

    std::vector<fs::path> entryFiles() const
    {
        std::vector<fs::path> files;
        const fs::path objects = fs::path(directory_) / "objects";
        if (!fs::exists(objects))
            return files;
        for (const auto &entry :
             fs::recursive_directory_iterator(objects)) {
            if (entry.is_regular_file()
                && entry.path().extension() == ".vlpa") {
                files.push_back(entry.path());
            }
        }
        return files;
    }

    std::string directory_;
};

CacheKey
sampleKey(const std::string &workload = "gcc")
{
    KeyBuilder builder("profile");
    builder.field("workload", workload)
        .field("indexBits", std::uint64_t{14})
        .field("scale", 0.05);
    return builder.build();
}

std::vector<std::uint8_t>
samplePayload(std::size_t size = 64, std::uint8_t seed = 7)
{
    std::vector<std::uint8_t> payload(size);
    for (std::size_t i = 0; i < size; ++i)
        payload[i] = static_cast<std::uint8_t>(seed + i * 13);
    return payload;
}

TEST(CacheKeyTest, TextIsCanonicalAndVersioned)
{
    const CacheKey key = sampleKey();
    // The artifact kind and format version lead every key, so a
    // version bump re-addresses every artifact at once.
    EXPECT_EQ(key.text().rfind("kind=profile;", 0), 0u) << key.text();
    EXPECT_NE(key.text().find(
                  "version=" + std::to_string(artifactFormatVersion)),
              std::string::npos)
        << key.text();
    EXPECT_NE(key.text().find("workload=gcc;"), std::string::npos);
}

TEST(CacheKeyTest, HashIsStableAndFieldSensitive)
{
    EXPECT_EQ(sampleKey().hashHex(), sampleKey().hashHex());
    EXPECT_EQ(sampleKey().hashHex().size(), 32u);
    EXPECT_NE(sampleKey("gcc").hashHex(), sampleKey("perl").hashHex());

    // Field order and naming matter: a value moving between fields
    // must not alias.
    KeyBuilder a("profile");
    a.field("x", std::uint64_t{1}).field("y", std::uint64_t{2});
    KeyBuilder b("profile");
    b.field("x", std::uint64_t{2}).field("y", std::uint64_t{1});
    EXPECT_NE(a.build().hashHex(), b.build().hashHex());
}

TEST(CacheKeyTest, RelativePathUsesHashFanout)
{
    const CacheKey key = sampleKey();
    const std::string hex = key.hashHex();
    EXPECT_EQ(key.relativePath(),
              "objects/" + hex.substr(0, 2) + "/" + hex + ".vlpa");
}

TEST(CacheKeyTest, RejectsReservedCharacters)
{
    KeyBuilder builder("profile");
    EXPECT_THROW(builder.field("work=load", std::string("x")),
                 std::runtime_error);
    EXPECT_THROW(builder.field("workload", std::string("a;b")),
                 std::runtime_error);
}

TEST(SerializeTest, Step1ProfileRoundTrip)
{
    core::FixedLengthSweep sweep;
    sweep.minLength = 2;
    sweep.mispredictions = {0, 40, 30, 20};
    sweep.branches = 500;
    std::unordered_map<std::uint64_t, core::BranchProfile> profiles;
    for (std::uint64_t pc : {0x400000ull, 0x400040ull, 0x123ull}) {
        core::BranchProfile profile;
        profile.executions = static_cast<std::uint32_t>(pc & 0xffff);
        for (unsigned i = 0; i < core::maxPathLength; ++i)
            profile.correct[i] = static_cast<std::uint32_t>(pc + i);
        profiles.emplace(pc, profile);
    }

    const auto payload = encodeStep1Profile(sweep, profiles);
    core::FixedLengthSweep decoded_sweep;
    std::unordered_map<std::uint64_t, core::BranchProfile> decoded;
    decodeStep1Profile(payload, decoded_sweep, decoded);

    EXPECT_EQ(decoded_sweep.minLength, sweep.minLength);
    EXPECT_EQ(decoded_sweep.mispredictions, sweep.mispredictions);
    EXPECT_EQ(decoded_sweep.branches, sweep.branches);
    ASSERT_EQ(decoded.size(), profiles.size());
    for (const auto &[pc, profile] : profiles) {
        ASSERT_TRUE(decoded.count(pc));
        EXPECT_EQ(decoded.at(pc).executions, profile.executions);
        EXPECT_EQ(decoded.at(pc).correct, profile.correct);
    }

    // Deterministic bytes regardless of hash-map iteration order.
    EXPECT_EQ(encodeStep1Profile(decoded_sweep, decoded), payload);
}

TEST(SerializeTest, AssignmentRoundTrip)
{
    core::HashAssignment assignment(5);
    assignment.assign(0x400000, 3);
    assignment.assign(0x400040, 17);

    const auto payload = encodeAssignment(assignment);
    const core::HashAssignment decoded = decodeAssignment(payload);
    EXPECT_EQ(decoded.defaultLength(), 5u);
    EXPECT_EQ(decoded.size(), 2u);
    EXPECT_EQ(decoded.lookup(0x400000), 3u);
    EXPECT_EQ(decoded.lookup(0x400040), 17u);
    EXPECT_EQ(decoded.lookup(0x999999), 5u); // default
}

TEST(SerializeTest, ComparisonRowRoundTrip)
{
    sim::ComparisonRow row;
    row.benchmark = "gcc";
    sim::RateEntry entry;
    entry.predictor = "gshare";
    entry.branches = 123456;
    entry.mispredictions = 789;
    entry.rate = 0.639094; // arbitrary bit pattern, must round-trip
    row.entries.push_back(entry);
    entry.predictor = "variable length path";
    entry.mispredictions = 456;
    entry.rate = 0.369327;
    row.entries.push_back(entry);

    const sim::ComparisonRow decoded =
        decodeComparisonRow(encodeComparisonRow(row));
    EXPECT_EQ(decoded.benchmark, "gcc");
    ASSERT_EQ(decoded.entries.size(), 2u);
    for (std::size_t i = 0; i < row.entries.size(); ++i) {
        EXPECT_EQ(decoded.entries[i].predictor,
                  row.entries[i].predictor);
        EXPECT_EQ(decoded.entries[i].branches,
                  row.entries[i].branches);
        EXPECT_EQ(decoded.entries[i].mispredictions,
                  row.entries[i].mispredictions);
        // Exact, not approximate: warm reruns must be bit-identical.
        EXPECT_EQ(decoded.entries[i].rate, row.entries[i].rate);
    }
}

TEST(SerializeTest, HfntRoundTrip)
{
    core::HashFunctionNumberTable table(4);
    for (std::uint64_t pc = 0; pc < 40; pc += 4) {
        table.predictNumber(pc);
        table.update(pc, static_cast<unsigned>(pc % 31 + 1));
    }
    const core::HashFunctionNumberTable decoded =
        decodeHfnt(encodeHfnt(table));
    EXPECT_EQ(decoded.indexBits(), table.indexBits());
    EXPECT_EQ(decoded.lookups(), table.lookups());
    EXPECT_EQ(decoded.mismatches(), table.mismatches());
    EXPECT_EQ(decoded.rawTable(), table.rawTable());
}

TEST(SerializeTest, DecodersRejectDamage)
{
    core::HashAssignment assignment(5);
    assignment.assign(0x400000, 3);
    auto payload = encodeAssignment(assignment);

    auto truncated = payload;
    truncated.resize(truncated.size() - 3);
    EXPECT_THROW(decodeAssignment(truncated), std::runtime_error);

    auto extended = payload;
    extended.push_back(0);
    EXPECT_THROW(decodeAssignment(extended), std::runtime_error);

    // An absurd element count must fail fast instead of reserving
    // gigabytes.
    std::vector<std::uint8_t> hostile(12, 0xff);
    EXPECT_THROW(decodeAssignment(hostile), std::runtime_error);

    core::FixedLengthSweep sweep;
    std::unordered_map<std::uint64_t, core::BranchProfile> profiles;
    EXPECT_THROW(decodeStep1Profile(hostile, sweep, profiles),
                 std::runtime_error);
}

TEST_F(StoreHarness, MissThenInsertThenHit)
{
    ArtifactStore store = open();
    const CacheKey key = sampleKey();
    EXPECT_FALSE(store.fetch(key).has_value());

    const auto payload = samplePayload();
    store.insert(key, payload);
    const auto fetched = store.fetch(key);
    ASSERT_TRUE(fetched.has_value());
    EXPECT_EQ(*fetched, payload);

    const StoreCounters counters = store.counters();
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.inserts, 1u);
    EXPECT_EQ(counters.hits, 1u);
    EXPECT_EQ(counters.corrupt, 0u);
}

TEST_F(StoreHarness, DistinctKeysDoNotAlias)
{
    ArtifactStore store = open();
    store.insert(sampleKey("gcc"), samplePayload(32, 1));
    store.insert(sampleKey("perl"), samplePayload(32, 2));
    EXPECT_EQ(*store.fetch(sampleKey("gcc")), samplePayload(32, 1));
    EXPECT_EQ(*store.fetch(sampleKey("perl")), samplePayload(32, 2));
}

TEST_F(StoreHarness, InsertOverwritesAtomically)
{
    ArtifactStore store = open();
    const CacheKey key = sampleKey();
    store.insert(key, samplePayload(32, 1));
    store.insert(key, samplePayload(48, 2));
    EXPECT_EQ(*store.fetch(key), samplePayload(48, 2));
    // No temp files may be left behind.
    for (const auto &entry :
         fs::recursive_directory_iterator(directory_)) {
        EXPECT_EQ(entry.path().string().find(".tmp."),
                  std::string::npos)
            << entry.path();
    }
}

TEST_F(StoreHarness, CorruptEntryIsEvictedAndRecomputed)
{
    ArtifactStore store = open();
    const CacheKey key = sampleKey();
    store.insert(key, samplePayload());

    // Flip one payload byte on disk; fetch must detect the damage,
    // remove the entry, and report a miss.
    const auto files = entryFiles();
    ASSERT_EQ(files.size(), 1u);
    {
        std::fstream file(files.front(),
                          std::ios::in | std::ios::out
                              | std::ios::binary);
        file.seekg(0, std::ios::end);
        const auto size = file.tellg();
        file.seekp(static_cast<long>(size) - 5);
        file.put(static_cast<char>(0xa5));
    }

    EXPECT_FALSE(store.fetch(key).has_value());
    EXPECT_EQ(store.counters().corrupt, 1u);
    EXPECT_TRUE(entryFiles().empty());

    // The slot is usable again.
    store.insert(key, samplePayload());
    EXPECT_TRUE(store.fetch(key).has_value());
}

TEST_F(StoreHarness, FormatVersionSkewInvalidates)
{
    ArtifactStore store = open();
    const CacheKey key = sampleKey();
    store.insert(key, samplePayload());

    // Patch the entry's stored format version (the u32 right after
    // the 8-byte magic): a reader from a different format generation
    // must treat the entry as corrupt, never misread it.
    const auto files = entryFiles();
    ASSERT_EQ(files.size(), 1u);
    {
        std::fstream file(files.front(),
                          std::ios::in | std::ios::out
                              | std::ios::binary);
        file.seekp(8);
        file.put(static_cast<char>(artifactFormatVersion + 1));
    }
    EXPECT_FALSE(store.fetch(key).has_value());
    EXPECT_EQ(store.counters().corrupt, 1u);
}

TEST_F(StoreHarness, GarbageCollectorEvictsLeastRecentlyUsed)
{
    // Budget for roughly two of the three ~1 KiB entries.
    const auto payload = samplePayload(1024);
    const std::uint64_t per_entry = 1024 + 256; // payload + header
    ArtifactStore store = open(2 * per_entry);

    const CacheKey a = sampleKey("aaa");
    const CacheKey b = sampleKey("bbb");
    const CacheKey c = sampleKey("ccc");
    store.insert(a, payload);
    store.insert(b, payload);

    // Make 'b' the least recently used by explicit timestamps (not
    // sleeps), marking 'a' as freshly touched.
    const auto now = fs::last_write_time(entryFiles().front());
    for (const auto &file : entryFiles()) {
        const bool is_a = file.string().find(a.hashHex())
            != std::string::npos;
        fs::last_write_time(
            file, is_a ? now : now - std::chrono::seconds(100));
    }

    store.insert(c, payload); // over budget: must evict 'b'
    EXPECT_TRUE(store.fetch(a).has_value());
    EXPECT_FALSE(store.fetch(b).has_value());
    EXPECT_TRUE(store.fetch(c).has_value());
    EXPECT_GE(store.counters().evicted, 1u);
}

TEST_F(StoreHarness, SummarizeVerifyAndClear)
{
    {
        ArtifactStore store = open();
        store.insert(sampleKey("one"), samplePayload(100));
        store.insert(sampleKey("two"), samplePayload(200));
        store.fetch(sampleKey("one"));
        store.fetch(sampleKey("missing"));
    } // destructor flushes counters to stats.log

    const auto summary = ArtifactStore::summarize(directory_);
    EXPECT_EQ(summary.entries, 2u);
    EXPECT_GT(summary.bytes, 300u);
    EXPECT_EQ(summary.lifetime.hits, 1u);
    EXPECT_EQ(summary.lifetime.misses, 1u);
    EXPECT_EQ(summary.lifetime.inserts, 2u);

    auto verified = ArtifactStore::verify(directory_);
    EXPECT_EQ(verified.ok, 2u);
    EXPECT_EQ(verified.corrupt, 0u);

    // Damage one entry; verify must find and remove exactly it.
    {
        std::fstream file(entryFiles().front(),
                          std::ios::in | std::ios::out
                              | std::ios::binary);
        file.seekp(-1, std::ios::end);
        file.put('\x5a');
    }
    verified = ArtifactStore::verify(directory_);
    EXPECT_EQ(verified.ok, 1u);
    EXPECT_EQ(verified.corrupt, 1u);
    EXPECT_EQ(entryFiles().size(), 1u);

    EXPECT_EQ(ArtifactStore::clear(directory_), 1u);
    EXPECT_EQ(ArtifactStore::summarize(directory_).entries, 0u);
}

/**
 * End-to-end cache contract on real (scaled-down) workloads. Mirrors
 * the ParallelHarness scale so the suite stays fast.
 */
class CachedExperimentHarness : public StoreHarness
{
  protected:
    void SetUp() override
    {
        StoreHarness::SetUp();
        setenv("VLPSIM_SCALE", "0.05", 1);
    }

    void TearDown() override
    {
        unsetenv("VLPSIM_SCALE");
        StoreHarness::TearDown();
    }

    std::shared_ptr<ArtifactStore> openShared()
    {
        StoreOptions options;
        options.directory = directory_;
        return std::make_shared<ArtifactStore>(options);
    }

    static std::vector<workload::BenchmarkSpec> specs()
    {
        return {workload::findBenchmark("compress"),
                workload::findBenchmark("li"),
                workload::findBenchmark("go"),
                workload::findBenchmark("ijpeg")};
    }
};

void
expectIdenticalRows(const std::vector<sim::ComparisonRow> &cold,
                    const std::vector<sim::ComparisonRow> &warm)
{
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(cold[i].benchmark, warm[i].benchmark);
        ASSERT_EQ(cold[i].entries.size(), warm[i].entries.size());
        for (std::size_t j = 0; j < cold[i].entries.size(); ++j) {
            const auto &a = cold[i].entries[j];
            const auto &b = warm[i].entries[j];
            EXPECT_EQ(a.predictor, b.predictor);
            EXPECT_EQ(a.branches, b.branches);
            EXPECT_EQ(a.mispredictions, b.mispredictions);
            // Bit-identical: cached artifacts carry the exact
            // integer counters, not rounded rates.
            EXPECT_EQ(a.rate, b.rate);
        }
    }
}

TEST_F(CachedExperimentHarness, WarmRunMatchesColdRunSerially)
{
    const auto suite = specs();
    std::vector<sim::ComparisonRow> cold;
    {
        sim::ParallelRunner runner(1);
        runner.setStore(openShared());
        cold = runner.compareConditionalSuite(suite, 4096, 5);
        EXPECT_EQ(runner.context().store()->counters().hits, 0u);
    }
    {
        sim::ParallelRunner runner(1);
        const auto store = openShared();
        runner.setStore(store);
        const auto warm =
            runner.compareConditionalSuite(suite, 4096, 5);
        expectIdenticalRows(cold, warm);
        // Every row came from the cache: no misses, no new inserts.
        const StoreCounters counters = store->counters();
        EXPECT_EQ(counters.hits, suite.size());
        EXPECT_EQ(counters.misses, 0u);
        EXPECT_EQ(counters.inserts, 0u);
    }
}

TEST_F(CachedExperimentHarness, WarmRunMatchesColdRunInParallel)
{
    const auto suite = specs();
    std::vector<sim::ComparisonRow> cold;
    {
        // Cold population runs with four workers sharing the store.
        sim::ParallelRunner runner(4);
        runner.setStore(openShared());
        cold = runner.compareIndirectSuite(suite, 512, 3);
    }
    {
        sim::ParallelRunner warm_parallel(4);
        warm_parallel.setStore(openShared());
        expectIdenticalRows(
            cold, warm_parallel.compareIndirectSuite(suite, 512, 3));
    }
    {
        // A serial consumer of the parallel-written cache agrees too.
        sim::ParallelRunner warm_serial(1);
        warm_serial.setStore(openShared());
        expectIdenticalRows(
            cold, warm_serial.compareIndirectSuite(suite, 512, 3));
    }
}

TEST_F(CachedExperimentHarness, CachedRunMatchesUncachedRun)
{
    const auto suite = specs();
    sim::ParallelRunner uncached(1);
    const auto expected =
        uncached.compareConditionalSuite(suite, 4096, 5);

    sim::ParallelRunner cached(1);
    cached.setStore(openShared());
    expectIdenticalRows(
        expected, cached.compareConditionalSuite(suite, 4096, 5));
}

TEST_F(CachedExperimentHarness, PoisonedEntryIsEvictedAndRecomputed)
{
    const auto suite = specs();
    std::vector<sim::ComparisonRow> cold;
    {
        sim::ParallelRunner runner(1);
        runner.setStore(openShared());
        cold = runner.compareConditionalSuite(suite, 4096, 5);
    }

    // Flip one byte in every cached entry's payload region.
    for (const auto &file : entryFiles()) {
        std::fstream stream(file, std::ios::in | std::ios::out
                                      | std::ios::binary);
        stream.seekp(-3, std::ios::end);
        char byte = 0;
        stream.seekg(-3, std::ios::end);
        stream.get(byte);
        stream.seekp(-3, std::ios::end);
        stream.put(static_cast<char>(byte ^ 0x40));
    }

    sim::ParallelRunner runner(1);
    const auto store = openShared();
    runner.setStore(store);
    const auto recovered =
        runner.compareConditionalSuite(suite, 4096, 5);
    expectIdenticalRows(cold, recovered);

    // Each poisoned row was detected, evicted, and recomputed.
    const StoreCounters counters = store->counters();
    EXPECT_GE(counters.corrupt, suite.size());
    EXPECT_GE(counters.inserts, suite.size());
    EXPECT_EQ(counters.hits, 0u);

    // The freshly rewritten cache serves hits again.
    sim::ParallelRunner rewarm(1);
    const auto rewarm_store = openShared();
    rewarm.setStore(rewarm_store);
    expectIdenticalRows(
        cold, rewarm.compareConditionalSuite(suite, 4096, 5));
    EXPECT_EQ(rewarm_store->counters().corrupt, 0u);
    EXPECT_EQ(rewarm_store->counters().hits, suite.size());
}

TEST_F(CachedExperimentHarness, WarmRunSkipsStepOneSweeps)
{
    const auto &spec = workload::findBenchmark("compress");
    {
        sim::ExperimentContext context;
        context.setStore(openShared());
        context.conditionalSweep(spec, 12);
        context.conditionalAssignment(spec, 12);
    }
    sim::ExperimentContext warm;
    const auto store = openShared();
    warm.setStore(store);
    // The assignment fetch must satisfy the request outright — step 1
    // is never consulted, so a warm rerun skips the sweeps entirely.
    warm.conditionalAssignment(spec, 12);
    EXPECT_EQ(store->counters().hits, 1u);
    EXPECT_EQ(store->counters().misses, 0u);
}

} // anonymous namespace
