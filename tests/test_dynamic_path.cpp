/**
 * @file
 * Tests for the hardware-selected (Section 3.4) variable length path
 * predictors.
 */

#include <gtest/gtest.h>

#include "core/dynamic_path.h"
#include "util/rng.h"

namespace {

using namespace vlp;
using namespace vlp::core;
using trace::BranchKind;
using trace::BranchRecord;

BranchRecord
record(BranchKind kind, std::uint64_t pc, std::uint64_t next,
       bool taken = true)
{
    BranchRecord result;
    result.pc = pc;
    result.nextPc = next;
    result.taken = taken;
    result.kind = kind;
    return result;
}

template <typename Predictor>
void
feed(Predictor &predictor, const BranchRecord &branch, bool *correct)
{
    const auto predicted = predictor.predict(branch);
    if (correct != nullptr) {
        if constexpr (std::is_same_v<std::decay_t<decltype(predicted)>,
                                     bool>) {
            *correct = predicted == branch.taken;
        } else {
            *correct = predicted == branch.nextPc;
        }
    }
    predictor.update(branch);
    predictor.observe(branch);
}

TEST(DynamicPath, RejectsBadCandidates)
{
    EXPECT_THROW(DynamicPathConditionalPredictor(10, {}),
                 std::runtime_error);
    EXPECT_THROW(DynamicPathConditionalPredictor(10, {0}),
                 std::runtime_error);
    EXPECT_THROW(DynamicPathConditionalPredictor(10, {40}),
                 std::runtime_error);
}

TEST(DynamicPath, LearnsDistanceFourWithoutProfiling)
{
    // Branch B's outcome equals a context branch 4 history entries
    // back; the hardware selector must discover that length 4 (or
    // longer) is the right candidate — no profiling pass involved.
    DynamicPathConditionalPredictor predictor(12, {1, 2, 4, 8});
    util::Rng rng(5);
    unsigned misses = 0;
    for (int i = 0; i < 6000; ++i) {
        const bool context = rng.nextBool(0.5);
        feed(predictor,
             record(BranchKind::Conditional, 0x400000,
                    context ? 0x400800 : 0x400004, context),
             nullptr);
        for (unsigned j = 0; j < 3; ++j) {
            feed(predictor,
                 record(BranchKind::Conditional, 0x401000 + 16 * j,
                        0x401008 + 16 * j, true),
                 nullptr);
        }
        bool correct = false;
        feed(predictor,
             record(BranchKind::Conditional, 0x402000,
                    context ? 0x402040 : 0x402004, context),
             &correct);
        if (i >= 3000 && !correct)
            ++misses;
    }
    EXPECT_LT(misses, 300u); // far better than the 1500 of a coin flip
    // The selected candidate for B covers the distance.
    const std::size_t chosen = predictor.selectedCandidate(0x402000);
    EXPECT_GE(predictor.candidates()[chosen], 4u);
}

TEST(DynamicPath, ShortBranchSelectsShortLength)
{
    // An always-taken branch amid noise: short lengths train faster
    // and alias less, so the selector should not pick 32.
    DynamicPathConditionalPredictor predictor(10, {1, 32});
    util::Rng rng(7);
    for (int i = 0; i < 4000; ++i) {
        feed(predictor,
             record(BranchKind::Conditional, 0x400100,
                    rng.nextBool(0.5) ? 0x400800 : 0x400104,
                    rng.nextBool(0.5)),
             nullptr);
        feed(predictor,
             record(BranchKind::Conditional, 0x402000, 0x402040,
                    true),
             nullptr);
    }
    EXPECT_EQ(predictor.candidates()[predictor.selectedCandidate(
                  0x402000)],
              1u);
}

TEST(DynamicPath, IndirectLearnsPathDependentTargets)
{
    DynamicPathIndirectPredictor predictor(9, {1, 2, 4});
    util::Rng rng(11);
    unsigned misses = 0;
    for (int i = 0; i < 6000; ++i) {
        const bool direction = rng.nextBool(0.5);
        // The conditional only feeds the history (as in Simulator:
        // indirect predictors never predict conditional records).
        predictor.observe(record(BranchKind::Conditional, 0x400000,
                                 direction ? 0x400800 : 0x400004,
                                 direction));
        bool correct = false;
        feed(predictor,
             record(BranchKind::IndirectJump, 0x402000,
                    direction ? 0x500000 : 0x600000),
             &correct);
        if (i >= 3000 && !correct)
            ++misses;
    }
    EXPECT_LT(misses, 150u);
}

TEST(DynamicPath, SizeIncludesScoreTables)
{
    DynamicPathConditionalPredictor predictor(12, {1, 2, 4, 8}, 10, 4);
    // 4K counters/4 + 1024 slots * 4 candidates * 4 bits / 8.
    EXPECT_EQ(predictor.sizeBytes(), 1024u + 2048u);
    DynamicPathIndirectPredictor indirect(9, {1, 2}, 8, 4);
    EXPECT_EQ(indirect.sizeBytes(), 2048u + 256u);
}

TEST(DynamicPath, Names)
{
    DynamicPathConditionalPredictor cond(10);
    DynamicPathIndirectPredictor ind(9);
    EXPECT_EQ(cond.name(), "dynamic variable length path");
    EXPECT_EQ(ind.name(), "dynamic variable length path");
}

} // anonymous namespace
