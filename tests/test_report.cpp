/**
 * @file
 * Tests for the structured report model and its sinks.
 *
 * The two golden-file tests are the byte-identity lock for the bench
 * refactor: they rebuild the Table 2 and Figures 5 & 6 reports through
 * bench::paper_reports and assert the ASCII sink reproduces the
 * committed pre-refactor stdout exactly, at --jobs 1 and --jobs 4.
 * The goldens were captured at VLPSIM_SCALE=0.05, so main() pins that
 * scale before the workload generators run.
 */

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <gtest/gtest.h>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "paper_reports.h"
#include "sim/parallel.h"
#include "sim/report.h"
#include "util/json.h"
#include "util/logging.h"

namespace {

using namespace vlp;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
renderAscii(const sim::Report &report)
{
    std::ostringstream out;
    sim::AsciiReportSink sink;
    sink.write(report, out);
    return out.str();
}

/** Build a report exactly the way bench::Driver does before the body
 *  runs, then fill it with @p build at @p jobs workers. */
template <typename Build>
std::string
renderBench(const char *title, const char *configuration,
            unsigned jobs, Build build)
{
    sim::Report report;
    report.title = title;
    report.configuration = configuration;
    report.banner = true;
    report.scale = util::workloadScale();
    sim::ParallelRunner runner(jobs);
    build(runner, report);
    return renderAscii(report);
}

TEST(GoldenAscii, Table2MatchesCommittedStdoutAtJobs1)
{
    const std::string golden =
        readFile(std::string(VLPSIM_GOLDEN_DIR) + "/bench_table2.txt");
    EXPECT_EQ(renderBench(bench::table2Title,
                          bench::table2Configuration, 1,
                          bench::buildTable2),
              golden);
}

TEST(GoldenAscii, Table2MatchesCommittedStdoutAtJobs4)
{
    const std::string golden =
        readFile(std::string(VLPSIM_GOLDEN_DIR) + "/bench_table2.txt");
    EXPECT_EQ(renderBench(bench::table2Title,
                          bench::table2Configuration, 4,
                          bench::buildTable2),
              golden);
}

TEST(GoldenAscii, Fig5_6MatchesCommittedStdoutAtJobs1)
{
    const std::string golden =
        readFile(std::string(VLPSIM_GOLDEN_DIR) + "/bench_fig5_6.txt");
    EXPECT_EQ(renderBench(bench::fig5_6Title,
                          bench::fig5_6Configuration, 1,
                          bench::buildFig5_6),
              golden);
}

TEST(GoldenAscii, Fig5_6MatchesCommittedStdoutAtJobs4)
{
    const std::string golden =
        readFile(std::string(VLPSIM_GOLDEN_DIR) + "/bench_fig5_6.txt");
    EXPECT_EQ(renderBench(bench::fig5_6Title,
                          bench::fig5_6Configuration, 4,
                          bench::buildFig5_6),
              golden);
}

/** A small report exercising every cell kind, metadata, captions,
 *  footers, text sections, and both layouts. */
sim::Report
sampleReport()
{
    sim::Report report;
    report.title = "sample";
    report.configuration = "unit test";
    report.setMeta("jobs", std::uint64_t{4});
    report.setMeta("note", "hello, \"world\"");
    report.addText("intro", "intro line\n");

    sim::Section &table = report.addSection("rates");
    table.caption = "\nRates\n";
    table.columns = {{"benchmark"}, {"branches"}, {"dynamic"},
                     {"ipc"}, {"miss (%)"}};
    table.addRow("gcc", {sim::Cell::text("gcc"),
                         sim::Cell::count(123456),
                         sim::Cell::scaled(17600000),
                         sim::Cell::real(1.25, 2),
                         sim::Cell::percent(8.125, 2)});
    table.addRow("go", {sim::Cell::text("go, \"alias\""),
                        sim::Cell::count(0),
                        sim::Cell::scaled(999),
                        sim::Cell::real(-0.5, 2),
                        sim::Cell::percent(100.0, 4)});
    table.footer = "footer line\n";

    sim::Section &entries = report.addSection("trace:cond");
    entries.layout = sim::Section::Layout::Entries;
    entries.caption = "  conditional (100 branches)\n";
    entries.columns = {{"mispredict (%)"}, {"mispredictions"},
                       {"branches"}};
    entries.addRow("gshare", {sim::Cell::percent(13.6754, 4),
                              sim::Cell::count(9436),
                              sim::Cell::count(69000)});
    return report;
}

TEST(JsonSink, RoundTripPreservesStructureAndValues)
{
    const sim::Report report = sampleReport();
    std::ostringstream out;
    sim::JsonReportSink sink;
    sink.write(report, out);

    const util::Json document = util::Json::parse(out.str());
    EXPECT_TRUE(sim::validateReportJson(document).empty());

    EXPECT_EQ(document.at("schema").asString(), "vlpsim-report");
    EXPECT_EQ(document.at("version").asUint(),
              sim::reportSchemaVersion);
    EXPECT_EQ(document.at("title").asString(), "sample");
    EXPECT_EQ(document.at("metadata").at("jobs").asString(), "4");
    EXPECT_EQ(document.at("metadata").at("note").asString(),
              "hello, \"world\"");

    const auto &sections = document.at("sections").items();
    ASSERT_EQ(sections.size(), 3u);
    EXPECT_EQ(sections[0].at("type").asString(), "text");
    EXPECT_EQ(sections[0].at("text").asString(), "intro line\n");

    const util::Json &table = sections[1];
    EXPECT_EQ(table.at("type").asString(), "table");
    ASSERT_EQ(table.at("columns").items().size(), 5u);
    EXPECT_EQ(table.at("columns").items()[4].asString(), "miss (%)");
    const util::Json &row = table.at("rows").items()[0];
    EXPECT_EQ(row.at("id").asString(), "gcc");
    const auto &cells = row.at("cells").items();
    EXPECT_EQ(cells[0].at("kind").asString(), "text");
    EXPECT_EQ(cells[0].at("value").asString(), "gcc");
    EXPECT_EQ(cells[1].at("kind").asString(), "count");
    EXPECT_EQ(cells[1].at("value").asUint(), 123456u);
    EXPECT_EQ(cells[2].at("kind").asString(), "scaled");
    EXPECT_EQ(cells[2].at("value").asUint(), 17600000u);
    EXPECT_EQ(cells[2].at("text").asString(), "17.6 M");
    EXPECT_EQ(cells[3].at("kind").asString(), "real");
    EXPECT_DOUBLE_EQ(cells[3].at("value").asNumber(), 1.25);
    EXPECT_EQ(cells[4].at("kind").asString(), "percent");
    EXPECT_DOUBLE_EQ(cells[4].at("value").asNumber(), 8.125);
    // snprintf %.2f rounds the exactly-representable 8.125 to even.
    EXPECT_EQ(cells[4].at("text").asString(), "8.12");
}

TEST(JsonSink, NonFiniteValuesSerializeAsNullWithText)
{
    sim::Report report;
    sim::Section &section = report.addSection("edge");
    section.columns = {{"value"}};
    section.addRow("inf", {sim::Cell::percent(
                              -std::numeric_limits<double>::infinity(),
                              1)});
    std::ostringstream out;
    sim::JsonReportSink sink;
    sink.write(report, out);

    const util::Json document = util::Json::parse(out.str());
    EXPECT_TRUE(sim::validateReportJson(document).empty());
    const util::Json &cell = document.at("sections")
                                 .items()[0]
                                 .at("rows")
                                 .items()[0]
                                 .at("cells")
                                 .items()[0];
    EXPECT_TRUE(cell.at("value").isNull());
    EXPECT_EQ(cell.at("text").asString(), "-inf");
}

TEST(CsvSink, EscapesCommasQuotesAndNewlines)
{
    sim::Report report;
    report.title = "csv test";
    sim::Section &section = report.addSection("cells");
    section.columns = {{"name"}, {"count"}};
    section.addRow("comma", {sim::Cell::text("a,b"),
                             sim::Cell::count(1)});
    section.addRow("quote", {sim::Cell::text("say \"hi\""),
                             sim::Cell::count(2)});
    section.addRow("newline", {sim::Cell::text("two\nlines"),
                               sim::Cell::count(3)});

    std::ostringstream out;
    sim::CsvReportSink sink;
    sink.write(report, out);
    const std::string text = out.str();

    EXPECT_NE(text.find("\"a,b\",1"), std::string::npos);
    EXPECT_NE(text.find("\"say \"\"hi\"\"\",2"), std::string::npos);
    EXPECT_NE(text.find("\"two\nlines\",3"), std::string::npos);
    // Plain values stay unquoted.
    EXPECT_NE(text.find("row,name,count"), std::string::npos);
}

TEST(CsvSink, NumericCellsEmitRawValues)
{
    sim::Report report = sampleReport();
    std::ostringstream out;
    sim::CsvReportSink sink;
    sink.write(report, out);
    const std::string text = out.str();
    // Scaled cells export the raw integer, not "17.6 M".
    EXPECT_NE(text.find("17600000"), std::string::npos);
    EXPECT_EQ(text.find("17.6 M"), std::string::npos);
}

TEST(AsciiSink, EntriesLayoutMatchesSuiteFormat)
{
    sim::Report report;
    sim::Section &entries = report.addSection("trace:cond");
    entries.layout = sim::Section::Layout::Entries;
    entries.caption = "  conditional (69000 branches)\n";
    entries.columns = {{"mispredict (%)"}, {"mispredictions"},
                       {"branches"}};
    entries.addRow("gshare", {sim::Cell::percent(13.6754, 4),
                              sim::Cell::count(9436),
                              sim::Cell::count(69000)});
    EXPECT_EQ(renderAscii(report),
              "  conditional (69000 branches)\n"
              "    gshare: 13.6754% (9436/69000)\n");
}

TEST(AsciiSink, PairedEntriesLayoutMatchesPairedSuiteFormat)
{
    sim::Report report;
    sim::Section &entries = report.addSection("pair:gcc:conditional");
    entries.layout = sim::Section::Layout::PairedEntries;
    entries.caption =
        "  conditional (69000 profiled branches; train vs test)\n";
    entries.columns = {{"train mispredict (%)"},
                       {"train mispredictions"},
                       {"train branches"},
                       {"test mispredict (%)"},
                       {"test mispredictions"},
                       {"test branches"}};
    entries.addRow("variable length path",
                   {sim::Cell::percent(4.2000, 4),
                    sim::Cell::count(2898), sim::Cell::count(69000),
                    sim::Cell::percent(6.5000, 4),
                    sim::Cell::count(4485), sim::Cell::count(69000)});
    entries.footer = "    generalization delta (variable length "
                     "path): +2.3000%\n";
    EXPECT_EQ(renderAscii(report),
              "  conditional (69000 profiled branches; train vs "
              "test)\n"
              "    variable length path: train 4.2000% (2898/69000) "
              "| test 6.5000% (4485/69000)\n"
              "    generalization delta (variable length path): "
              "+2.3000%\n");
}

TEST(ReportFormat, ParseAcceptsKnownNamesAndRejectsOthers)
{
    EXPECT_EQ(sim::parseReportFormat("ascii"),
              sim::ReportFormat::Ascii);
    EXPECT_EQ(sim::parseReportFormat("csv"), sim::ReportFormat::Csv);
    EXPECT_EQ(sim::parseReportFormat("json"), sim::ReportFormat::Json);
    EXPECT_THROW(sim::parseReportFormat("xml"), std::runtime_error);
}

TEST(ValidateReportJson, FlagsSchemaViolations)
{
    const util::Json bad = util::Json::parse(
        R"({"schema":"vlpsim-report","version":2,"title":"t",)"
        R"("configuration":"","metadata":{},"sections":[)"
        R"({"name":"s","type":"table","columns":["a"],)"
        R"("rows":[{"id":"r","cells":[]}]}]})");
    // Row with 0 cells against 1 column must be rejected.
    EXPECT_FALSE(sim::validateReportJson(bad).empty());

    const util::Json wrong_schema = util::Json::parse(
        R"({"schema":"other","version":2,"title":"t",)"
        R"("configuration":"","metadata":{},"sections":[]})");
    EXPECT_FALSE(sim::validateReportJson(wrong_schema).empty());
}

TEST(Reduction, SignedWithExplicitZeroBaseline)
{
    sim::RateEntry base;
    sim::RateEntry better;

    base.mispredictions = 200;
    better.mispredictions = 50;
    EXPECT_DOUBLE_EQ(bench::reduction(base, better), 75.0);

    // Regression reports its true signed magnitude.
    better.mispredictions = 300;
    EXPECT_DOUBLE_EQ(bench::reduction(base, better), -50.0);

    // Zero baseline: no change is 0, any misses are -inf.
    base.mispredictions = 0;
    better.mispredictions = 0;
    EXPECT_DOUBLE_EQ(bench::reduction(base, better), 0.0);
    better.mispredictions = 1;
    EXPECT_TRUE(std::isinf(bench::reduction(base, better)));
    EXPECT_LT(bench::reduction(base, better), 0.0);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // The committed goldens were captured at this scale; pin it before
    // any workload generation so the comparison is byte-exact.
    setenv("VLPSIM_SCALE", "0.05", 1);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
