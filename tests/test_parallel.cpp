/**
 * @file
 * Tests for the parallel experiment engine: the thread pool itself,
 * and the determinism contract — any --jobs value must reproduce the
 * serial results bit for bit.
 */

#include <atomic>
#include <cstdlib>
#include <gtest/gtest.h>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "sim/experiment.h"
#include "sim/parallel.h"
#include "util/thread_pool.h"
#include "workload/benchmarks.h"

namespace {

using namespace vlp;
using namespace vlp::sim;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    util::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    util::ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&counter] { ++counter; });
        pool.wait();
        EXPECT_EQ(counter.load(), (round + 1) * 10);
    }
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately)
{
    util::ThreadPool pool(2);
    pool.wait();
    SUCCEED();
}

TEST(ThreadPool, DefaultThreadCountIsPositive)
{
    EXPECT_GE(util::ThreadPool::defaultThreadCount(), 1u);
}

TEST(ParallelRunner, JobsZeroMeansHardwareConcurrency)
{
    ParallelRunner runner(0);
    EXPECT_EQ(runner.jobs(), util::ThreadPool::defaultThreadCount());
}

TEST(ParallelRunner, MapPreservesIndexOrder)
{
    ParallelRunner runner(4);
    const auto squares = runner.map<std::size_t>(
        17, [](ExperimentContext &, std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 17u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelRunner, MapOverZeroItems)
{
    ParallelRunner runner(4);
    const auto empty = runner.map<int>(
        0, [](ExperimentContext &, std::size_t) { return 1; });
    EXPECT_TRUE(empty.empty());
}

TEST(ParallelRunner, ExceptionsPropagateToCaller)
{
    ParallelRunner runner(4);
    EXPECT_THROW(
        runner.map<int>(8,
                        [](ExperimentContext &, std::size_t i) {
                            if (i == 5)
                                throw std::runtime_error("boom");
                            return 0;
                        }),
        std::runtime_error);
}

TEST(ParallelRunner, PredictionCounterAccumulates)
{
    ParallelRunner runner(2);
    EXPECT_EQ(runner.predictions(), 0u);
    runner.map<int>(10, [&](ExperimentContext &, std::size_t) {
        runner.addPredictions(7);
        return 0;
    });
    EXPECT_EQ(runner.predictions(), 70u);
}

/** Shrinks the synthetic workloads so the suite stays fast. */
class ParallelHarness : public ::testing::Test
{
  protected:
    void SetUp() override { setenv("VLPSIM_SCALE", "0.05", 1); }
    void TearDown() override { unsetenv("VLPSIM_SCALE"); }
};

std::vector<workload::BenchmarkSpec>
testSpecs()
{
    std::vector<workload::BenchmarkSpec> specs;
    for (const char *name : {"compress", "li", "go"})
        specs.push_back(workload::findBenchmark(name));
    return specs;
}

void
expectIdenticalRows(const std::vector<ComparisonRow> &serial,
                    const std::vector<ComparisonRow> &parallel)
{
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].benchmark, parallel[i].benchmark);
        ASSERT_EQ(serial[i].entries.size(), parallel[i].entries.size());
        for (std::size_t j = 0; j < serial[i].entries.size(); ++j) {
            const auto &a = serial[i].entries[j];
            const auto &b = parallel[i].entries[j];
            EXPECT_EQ(a.predictor, b.predictor);
            EXPECT_EQ(a.branches, b.branches);
            EXPECT_EQ(a.mispredictions, b.mispredictions);
            // Bit-identical, not just close: the determinism
            // contract promises the exact serial arithmetic.
            EXPECT_EQ(a.rate, b.rate);
        }
    }
}

TEST_F(ParallelHarness, ConditionalRowsBitIdenticalAcrossJobs)
{
    const auto specs = testSpecs();
    ParallelRunner serial(1);
    ParallelRunner parallel(4);
    const unsigned serial_length =
        serial.globalConditionalLength(4096);
    const unsigned parallel_length =
        parallel.globalConditionalLength(4096);
    EXPECT_EQ(serial_length, parallel_length);
    expectIdenticalRows(
        serial.compareConditionalSuite(specs, 4096, serial_length),
        parallel.compareConditionalSuite(specs, 4096,
                                         parallel_length));
}

TEST_F(ParallelHarness, IndirectRowsBitIdenticalAcrossJobs)
{
    const auto specs = testSpecs();
    ParallelRunner serial(1);
    ParallelRunner parallel(4);
    const unsigned serial_length = serial.globalIndirectLength(512);
    const unsigned parallel_length =
        parallel.globalIndirectLength(512);
    EXPECT_EQ(serial_length, parallel_length);
    expectIdenticalRows(
        serial.compareIndirectSuite(specs, 512, serial_length),
        parallel.compareIndirectSuite(specs, 512, parallel_length));
}

TEST_F(ParallelHarness, AverageSweepBitIdenticalAcrossJobs)
{
    ParallelRunner serial(1);
    ParallelRunner parallel(4);
    const auto serial_sweep = serial.averageConditionalSweep(4096);
    const auto parallel_sweep =
        parallel.averageConditionalSweep(4096);
    ASSERT_EQ(serial_sweep.size(), parallel_sweep.size());
    for (std::size_t i = 0; i < serial_sweep.size(); ++i)
        EXPECT_EQ(serial_sweep[i], parallel_sweep[i]);
}

/**
 * The step-1 length-sharding determinism contract: profiling with any
 * --jobs value must reproduce the serial profiler bit for bit — the
 * aggregate sweep, every per-branch record, and the final assignment.
 */
TEST_F(ParallelHarness, Step1ShardingBitIdenticalAcrossJobs)
{
    auto profile_trace = workload::generateTrace(
        workload::findBenchmark("compress"),
        workload::InputKind::Profile, 0.02);

    // 4 workers over the full 32 lengths and 5 over a ragged
    // 10-length range: even and uneven shard splits must both merge
    // identically.
    for (unsigned jobs : {4u, 5u}) {
        core::ProfileOptions options;
        options.indexBits = 12;
        options.jobs = jobs;
        if (jobs == 5) {
            options.minLength = 3;
            options.maxLength = 12;
        }

        core::ProfileOptions reference_options = options;
        reference_options.jobs = 1;
        core::ConditionalProfiler reference(reference_options);
        profile_trace.reset();
        reference.runStep1(profile_trace);

        core::ConditionalProfiler sharded(options);
        profile_trace.reset();
        sharded.runStep1(profile_trace);

        const auto &expect_sweep = reference.step1Sweep();
        const auto &actual_sweep = sharded.step1Sweep();
        EXPECT_EQ(actual_sweep.branches, expect_sweep.branches);
        EXPECT_EQ(actual_sweep.minLength, expect_sweep.minLength);
        ASSERT_EQ(actual_sweep.mispredictions,
                  expect_sweep.mispredictions);

        const auto &expect_profiles = reference.branchProfiles();
        const auto &actual_profiles = sharded.branchProfiles();
        ASSERT_EQ(actual_profiles.size(), expect_profiles.size());
        for (const auto &[pc, expected] : expect_profiles) {
            const auto found = actual_profiles.find(pc);
            ASSERT_NE(found, actual_profiles.end());
            EXPECT_EQ(found->second.executions, expected.executions);
            EXPECT_EQ(found->second.correct, expected.correct);
        }
    }
}

TEST_F(ParallelHarness, Step1ShardingAssignmentIdenticalAcrossJobs)
{
    auto profile_trace = workload::generateTrace(
        workload::findBenchmark("li"), workload::InputKind::Profile,
        0.02);

    core::ProfileOptions options;
    options.indexBits = 12;
    core::ConditionalProfiler serial(options);
    profile_trace.reset();
    const core::HashAssignment serial_assignment =
        serial.profile(profile_trace);

    options.jobs = 4;
    core::ConditionalProfiler sharded(options);
    profile_trace.reset();
    const core::HashAssignment sharded_assignment =
        sharded.profile(profile_trace);

    EXPECT_EQ(sharded_assignment.defaultLength(),
              serial_assignment.defaultLength());
    ASSERT_EQ(sharded_assignment.table(), serial_assignment.table());

    // The indirect profiler shares the sharded sweep machinery.
    core::IndirectProfiler indirect_serial(options);
    profile_trace.reset();
    indirect_serial.runStep1(profile_trace);
    core::IndirectProfiler indirect_sharded(options);
    profile_trace.reset();
    indirect_sharded.runStep1(profile_trace);
    EXPECT_EQ(indirect_sharded.step1Sweep().mispredictions,
              indirect_serial.step1Sweep().mispredictions);
    EXPECT_EQ(indirect_sharded.step1Sweep().branches,
              indirect_serial.step1Sweep().branches);
}

TEST_F(ParallelHarness, SerialRunnerMatchesPlainContext)
{
    // --jobs 1 must be the exact serial code path.
    ParallelRunner runner(1);
    ExperimentContext context;
    const auto &spec = workload::findBenchmark("compress");
    const auto direct = compareConditional(context, spec, 4096, 4);
    const auto via_runner =
        runner.compareConditionalSuite({spec}, 4096, 4);
    ASSERT_EQ(via_runner.size(), 1u);
    expectIdenticalRows({direct}, via_runner);
}

} // anonymous namespace
