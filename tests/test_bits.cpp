/**
 * @file
 * Unit tests for util/bits.h.
 */

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/rng.h"

namespace {

using namespace vlp::util;

TEST(Mask, Widths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(32), 0xffffffffu);
    EXPECT_EQ(mask(63), 0x7fffffffffffffffULL);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(Truncate, KeepsLowBits)
{
    EXPECT_EQ(truncate(0x12345678, 8), 0x78u);
    EXPECT_EQ(truncate(0x12345678, 16), 0x5678u);
    EXPECT_EQ(truncate(0xffffffffffffffffULL, 64),
              0xffffffffffffffffULL);
    EXPECT_EQ(truncate(0xff, 0), 0u);
}

TEST(Fits, Boundaries)
{
    EXPECT_TRUE(fits(0, 1));
    EXPECT_TRUE(fits(1, 1));
    EXPECT_FALSE(fits(2, 1));
    EXPECT_TRUE(fits(0xffff, 16));
    EXPECT_FALSE(fits(0x10000, 16));
}

TEST(Rotl, BasicRotation)
{
    // 4-bit rotate: 0b0001 left by 1 -> 0b0010.
    EXPECT_EQ(rotl(0b0001, 1, 4), 0b0010u);
    // Wrap: 0b1000 left by 1 -> 0b0001.
    EXPECT_EQ(rotl(0b1000, 1, 4), 0b0001u);
    // Rotating by the width is the identity.
    EXPECT_EQ(rotl(0b1010, 4, 4), 0b1010u);
    // Amount beyond the width wraps.
    EXPECT_EQ(rotl(0b1000, 5, 4), 0b0001u);
}

TEST(Rotl, IgnoresHighBits)
{
    // Bits above the width must not leak into the result.
    EXPECT_EQ(rotl(0xf0, 1, 4), 0u);
}

TEST(Rotr, InverseOfRotl)
{
    EXPECT_EQ(rotr(0b0010, 1, 4), 0b0001u);
    EXPECT_EQ(rotr(0b0001, 1, 4), 0b1000u);
}

TEST(Rotl, DegenerateWidths)
{
    // Width 0: a zero-width register holds no bits. This used to hit
    // `amount %= 0` — undefined behaviour — before the guard.
    EXPECT_EQ(rotl(0b1010, 3, 0), 0u);
    EXPECT_EQ(rotl(~std::uint64_t{0}, 0, 0), 0u);
    EXPECT_EQ(rotr(0b1010, 3, 0), 0u);

    // Width 1: the single bit is a fixed point of every rotation.
    EXPECT_EQ(rotl(1, 0, 1), 1u);
    EXPECT_EQ(rotl(1, 1, 1), 1u);
    EXPECT_EQ(rotl(1, 17, 1), 1u);
    EXPECT_EQ(rotl(0, 5, 1), 0u);
    EXPECT_EQ(rotr(1, 13, 1), 1u);

    // Width 64: full-register rotates must not shift by 64 (UB).
    const std::uint64_t value = 0x8000000000000001ULL;
    EXPECT_EQ(rotl(value, 0, 64), value);
    EXPECT_EQ(rotl(value, 64, 64), value);
    EXPECT_EQ(rotl(value, 1, 64), 0x0000000000000003ULL);
    EXPECT_EQ(rotr(value, 1, 64), 0xC000000000000000ULL);
}

class RotationProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RotationProperty, RoundTripAndPopcount)
{
    const unsigned width = GetParam();
    vlp::util::Rng rng(width * 977 + 3);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t value = truncate(rng.next(), width);
        const unsigned amount =
            static_cast<unsigned>(rng.nextBelow(2 * width + 1));
        const std::uint64_t rotated = rotl(value, amount, width);
        // Rotation preserves the number of set bits.
        EXPECT_EQ(popCount(rotated), popCount(value));
        // rotr undoes rotl.
        EXPECT_EQ(rotr(rotated, amount, width), value);
        // Rotating by the width is the identity.
        EXPECT_EQ(rotl(value, width, width), value);
        // Rotation distributes over XOR.
        const std::uint64_t other = truncate(rng.next(), width);
        EXPECT_EQ(rotl(value ^ other, amount, width),
                  rotl(value, amount, width)
                      ^ rotl(other, amount, width));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, RotationProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 9u, 12u,
                                           14u, 16u, 20u, 31u, 32u,
                                           48u, 63u, 64u));

TEST(PowerOf2, Classification)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(Log2, FloorAndCeil)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1025), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(XorFold, WidthBound)
{
    vlp::util::Rng rng(42);
    for (unsigned width = 1; width <= 32; ++width) {
        for (int i = 0; i < 20; ++i) {
            EXPECT_TRUE(fits(xorFold(rng.next(), width), width));
        }
    }
}

TEST(XorFold, PreservesLowValueIdentity)
{
    // A value that already fits is returned unchanged.
    EXPECT_EQ(xorFold(0x3f, 8), 0x3fu);
    // Two chunks fold together.
    EXPECT_EQ(xorFold(0x0102, 8), 0x01u ^ 0x02u);
}

TEST(BitRange, Extraction)
{
    EXPECT_EQ(bitRange(0xabcd, 7, 4), 0xcu);
    EXPECT_EQ(bitRange(0xabcd, 15, 12), 0xau);
    EXPECT_EQ(bitRange(0xabcd, 3, 0), 0xdu);
    EXPECT_EQ(bitRange(0x1, 0, 0), 0x1u);
}

TEST(PopCount, Values)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(1), 1u);
    EXPECT_EQ(popCount(0xff), 8u);
    EXPECT_EQ(popCount(~std::uint64_t{0}), 64u);
}

} // anonymous namespace
